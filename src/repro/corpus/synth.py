"""Corpus-scale synthetic grid growth (1k–10k buses).

The paper's evaluation stops at IEEE-118; the corpus layer grows
*realistic* transmission topologies well past that.  Real grids are
sparse (mean degree ≈ 3 regardless of size, §V-B), mildly hub-heavy
(substations ringing generation sites), and locally meshed (redundant
corridors between electrically close buses).  :func:`grow_grid`
reproduces those three traits with two knobs:

* ``preferential`` — each new bus attaches to an existing bus chosen by
  degree-roulette with this probability (preferential attachment →
  hubs), else uniformly (→ flat rural feeders);
* ``meshing`` — each reinforcement chord is drawn *locally* (between
  buses grown at nearby times, a proxy for electrical distance) with
  this probability, else between arbitrary low-degree buses.

Everything is driven by one seeded :class:`random.Random`, so the grown
topology — and therefore every downstream fingerprint
(:meth:`~repro.scada.network.ScadaNetwork.fingerprint`,
:meth:`~repro.core.problem.ObservabilityProblem.fingerprint`) — is
bit-identical across processes and machines for a fixed
:class:`GridSpec`.  That stability is what lets the corpus result store
key records by fingerprint and survive resumes.
"""

from __future__ import annotations

import hashlib
import json
import random
from dataclasses import asdict, dataclass
from typing import Any, Dict, List, Mapping, Tuple

from ..grid.bus_system import BusSystem, from_branch_list
from ..grid.ieee_cases import IEEE14_BRANCHES

__all__ = ["GridSpec", "grow_grid"]

#: Reactances are drawn from the range spanned by the real IEEE-14
#: data, exactly as :func:`repro.grid.ieee_cases.synthetic_grid` does.
_REACTANCE_LO = min(x for _, _, x in IEEE14_BRANCHES)
_REACTANCE_HI = max(x for _, _, x in IEEE14_BRANCHES)


@dataclass(frozen=True)
class GridSpec:
    """A seeded recipe for one synthetic corpus grid.

    The spec — not the grown :class:`~repro.grid.bus_system.BusSystem`
    — is what the corpus persists: a few integers regenerate the exact
    grid anywhere, and :meth:`fingerprint` names it stably.
    """

    num_buses: int
    avg_degree: float = 3.0
    preferential: float = 0.8
    meshing: float = 0.3
    seed: int = 0

    def __post_init__(self) -> None:
        if self.num_buses < 4:
            raise ValueError("a corpus grid needs at least 4 buses")
        if not 0.0 <= self.preferential <= 1.0:
            raise ValueError("preferential must be in [0, 1]")
        if not 0.0 <= self.meshing <= 1.0:
            raise ValueError("meshing must be in [0, 1]")
        branches = self.num_branches
        if branches < self.num_buses - 1:
            raise ValueError(
                f"avg_degree={self.avg_degree:g} yields {branches} "
                f"branches, below the spanning {self.num_buses - 1}")
        if branches > self.num_buses * (self.num_buses - 1) // 2:
            raise ValueError(
                f"avg_degree={self.avg_degree:g} asks for more "
                f"branches than bus pairs")

    @property
    def num_branches(self) -> int:
        """Branch count implied by the target average degree."""
        return max(self.num_buses - 1,
                   round(self.avg_degree * self.num_buses / 2))

    @property
    def name(self) -> str:
        return f"corpus{self.num_buses}-s{self.seed}"

    def fingerprint(self) -> str:
        """A stable 16-hex digest of the recipe (not the grown grid)."""
        payload = json.dumps(self.to_json(), sort_keys=True)
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16]

    def to_json(self) -> Dict[str, Any]:
        return asdict(self)

    @classmethod
    def from_json(cls, payload: Mapping[str, Any]) -> "GridSpec":
        known = {f: payload[f] for f in
                 ("num_buses", "avg_degree", "preferential", "meshing",
                  "seed") if f in payload}
        return cls(**known)


def grow_grid(spec: GridSpec) -> BusSystem:
    """Grow the synthetic grid *spec* describes.

    Construction: a 3-bus seed triangle, then one bus at a time, each
    attaching to an existing bus by preferential (degree-roulette) or
    uniform choice — this yields a connected backbone with a realistic
    mildly-heavy degree tail.  Reinforcement chords then mesh the
    backbone up to the target branch count, drawn locally (between
    buses of nearby growth order) or between low-degree buses.
    """
    rng = random.Random(spec.seed)
    n = spec.num_buses
    degree = [0] * (n + 1)
    used: set = set()
    edges: List[Tuple[int, int]] = []

    def connect(a: int, b: int) -> None:
        pair = (min(a, b), max(a, b))
        used.add(pair)
        edges.append(pair)
        degree[a] += 1
        degree[b] += 1

    # Seed triangle: the smallest meshed grid.
    connect(1, 2)
    connect(2, 3)
    connect(1, 3)

    # Growth phase: every new bus uplinks once, preferentially.
    for bus in range(4, n + 1):
        grown = bus - 1
        if rng.random() < spec.preferential:
            target = rng.choices(range(1, grown + 1),
                                 weights=degree[1:grown + 1], k=1)[0]
        else:
            target = rng.randint(1, grown)
        connect(bus, target)

    # Meshing phase: reinforcement chords up to the target density.
    window = max(2, n // 20)
    attempts = 0
    target_branches = spec.num_branches
    while len(edges) < target_branches:
        attempts += 1
        if attempts > 200 * target_branches:  # pragma: no cover
            raise RuntimeError("could not place all meshing chords")
        a = rng.randint(1, n)
        if rng.random() < spec.meshing:
            lo = max(1, a - window)
            hi = min(n, a + window)
            b = rng.randint(lo, hi)
        else:
            candidates = rng.sample(range(1, n + 1), min(4, n))
            candidates.sort(key=lambda bus: degree[bus])
            b = candidates[0] if candidates[0] != a else candidates[1]
        if a == b or (min(a, b), max(a, b)) in used:
            continue
        connect(a, b)

    branch_data = [(a, b, rng.uniform(_REACTANCE_LO, _REACTANCE_HI))
                   for a, b in edges]
    return from_branch_list(spec.name, n, branch_data)
