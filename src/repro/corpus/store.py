"""Versioned on-disk result store for corpus sweeps.

Layout under one root directory::

    store/
      index.json          # {"version": 1, "shards": [...], "records": N}
      shards/<xx>.jsonl   # records whose cell digest starts with xx
      quarantine/         # shards that failed to parse, moved aside

Records are keyed by a :class:`CellKey` — the PR-2 encoding
fingerprints plus canonical digests of the spec and the solver
:class:`~repro.sat.Limits` — so a cell re-run on the same grid with
the same budget is a store hit whatever process computes it.  Every
write goes through write-to-temp + :func:`os.replace` (atomic on
POSIX), so a killed run leaves either the old shard or the new one,
never a torn file.  A shard that *does* arrive corrupt (disk fault,
hand editing, a version from the future) is moved whole into
``quarantine/`` at open: its cells simply re-run, and nothing of the
rest of the store is lost.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass, field
from typing import (
    Any,
    Dict,
    Iterator,
    List,
    Mapping,
    NamedTuple,
    Optional,
    Set,
    Tuple,
)

from ..core.results import Status, ThreatVector, VerificationResult
from ..core.search import SearchBounds
from ..core.specs import Property, ResiliencySpec
from ..obs.tracer import count as obs_count
from ..sat.limits import Limits

__all__ = [
    "STORE_VERSION", "CellKey", "CorpusRecord", "ResultStore",
    "StoreVersionError", "spec_payload", "spec_from_payload",
    "limits_payload", "limits_from_payload",
]

#: Schema version of the persisted record format.  Bump on any
#: incompatible change; old stores fail loudly instead of misreading.
STORE_VERSION = 1


class StoreVersionError(ValueError):
    """The on-disk store speaks a different schema version."""


def _digest(payload: Mapping[str, Any]) -> str:
    canonical = json.dumps(payload, sort_keys=True)
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:16]


def spec_payload(spec: ResiliencySpec) -> Dict[str, Any]:
    """A canonical JSON form of *spec* (round-trips exactly)."""
    return {
        "property": spec.property.value,
        "k": spec.budget.k,
        "k1": spec.budget.k1,
        "k2": spec.budget.k2,
        "r": spec.r,
        "link_k": spec.link_k,
    }


def spec_from_payload(payload: Mapping[str, Any]) -> ResiliencySpec:
    prop = Property(payload["property"])
    return ResiliencySpec.for_property(
        prop, r=int(payload.get("r") or 1),
        k=payload.get("k"), k1=payload.get("k1"), k2=payload.get("k2"),
        link_k=payload.get("link_k"))


def limits_payload(limits: Optional[Limits]) -> Dict[str, Any]:
    if limits is None:
        return {}
    return {
        "max_time": limits.max_time,
        "max_conflicts": limits.max_conflicts,
        "max_propagations": limits.max_propagations,
        "max_memory_mb": limits.max_memory_mb,
    }


def limits_from_payload(payload: Mapping[str, Any]) -> Optional[Limits]:
    if not any(payload.get(name) is not None for name in
               ("max_time", "max_conflicts", "max_propagations",
                "max_memory_mb")):
        return None
    return Limits(max_time=payload.get("max_time"),
                  max_conflicts=payload.get("max_conflicts"),
                  max_propagations=payload.get("max_propagations"),
                  max_memory_mb=payload.get("max_memory_mb"))


class CellKey(NamedTuple):
    """What uniquely identifies one stored verification cell.

    Mirrors :class:`~repro.engine.EncodingKey`'s fingerprint pair, and
    adds the spec and limits — a retry of an UNKNOWN cell under a
    *bigger* budget is deliberately a different cell, so it re-runs
    while the cheap verdict stays on record.
    """

    network_fingerprint: str
    problem_fingerprint: str
    spec_digest: str
    limits_digest: str

    @classmethod
    def for_cell(cls, network_fingerprint: str, problem_fingerprint: str,
                 spec: ResiliencySpec,
                 limits: Optional[Limits]) -> "CellKey":
        return cls(network_fingerprint, problem_fingerprint,
                   _digest(spec_payload(spec)),
                   _digest(limits_payload(limits)))

    def digest(self) -> str:
        return _digest({"n": self.network_fingerprint,
                        "p": self.problem_fingerprint,
                        "s": self.spec_digest,
                        "l": self.limits_digest})


def _threat_payload(threat: ThreatVector) -> Dict[str, Any]:
    return {
        "ieds": sorted(threat.failed_ieds),
        "rtus": sorted(threat.failed_rtus),
        "links": sorted(list(pair) for pair in threat.failed_links),
        "undelivered": sorted(threat.undelivered_measurements),
        "uncovered": sorted(threat.uncovered_states),
        "minimal": threat.minimal,
    }


def _threat_from_payload(payload: Mapping[str, Any]) -> ThreatVector:
    return ThreatVector(
        failed_ieds=frozenset(payload.get("ieds") or ()),
        failed_rtus=frozenset(payload.get("rtus") or ()),
        failed_links=frozenset(tuple(pair) for pair
                               in payload.get("links") or ()),
        undelivered_measurements=frozenset(
            payload.get("undelivered") or ()),
        uncovered_states=frozenset(payload.get("uncovered") or ()),
        minimal=bool(payload.get("minimal", False)))


def _bounds_payload(bounds: Optional[SearchBounds]
                    ) -> Optional[Dict[str, Any]]:
    if bounds is None:
        return None
    return {"lower": bounds.lower, "upper": bounds.upper,
            "unknown_budgets": list(bounds.unknown_budgets)}


def _bounds_from_payload(payload: Optional[Mapping[str, Any]]
                         ) -> Optional[SearchBounds]:
    if payload is None:
        return None
    return SearchBounds(
        lower=int(payload["lower"]), upper=int(payload["upper"]),
        unknown_budgets=tuple(payload.get("unknown_budgets") or ()))


@dataclass
class CorpusRecord:
    """One stored cell: its key, verdict, and (for UNKNOWN) bounds."""

    key: CellKey
    spec: ResiliencySpec
    limits: Optional[Limits]
    result: VerificationResult
    #: The sound search bracket recorded alongside an UNKNOWN verdict,
    #: seeding a later retry under bigger limits.  ``None`` otherwise.
    bounds: Optional[SearchBounds] = None
    #: Free-form provenance (grid name, bus count, screening flag).
    meta: Dict[str, Any] = field(default_factory=dict)

    def to_json(self) -> Dict[str, Any]:
        result = self.result
        payload: Dict[str, Any] = {
            "version": STORE_VERSION,
            "key": list(self.key),
            "spec": spec_payload(self.spec),
            "limits": limits_payload(self.limits),
            "result": {
                "status": result.status.value,
                "threat": (_threat_payload(result.threat)
                           if result.threat is not None else None),
                "solve_time": result.solve_time,
                "encode_time": result.encode_time,
                "extract_time": result.extract_time,
                "num_vars": result.num_vars,
                "num_clauses": result.num_clauses,
                "backend": result.backend,
                "limit_reason": result.limit_reason,
            },
            "bounds": _bounds_payload(self.bounds),
            "meta": dict(self.meta),
        }
        return payload

    @classmethod
    def from_json(cls, payload: Mapping[str, Any]) -> "CorpusRecord":
        if payload.get("version") != STORE_VERSION:
            raise StoreVersionError(
                f"record version {payload.get('version')!r} != "
                f"{STORE_VERSION}")
        raw_key = payload.get("key")
        if not isinstance(raw_key, list) or len(raw_key) != 4:
            raise ValueError("record key is malformed")
        spec = spec_from_payload(payload["spec"])
        limits = limits_from_payload(payload.get("limits") or {})
        raw = payload["result"]
        threat_raw = raw.get("threat")
        result = VerificationResult(
            spec=spec,
            status=Status(raw["status"]),
            threat=(_threat_from_payload(threat_raw)
                    if threat_raw is not None else None),
            solve_time=float(raw.get("solve_time") or 0.0),
            encode_time=float(raw.get("encode_time") or 0.0),
            extract_time=float(raw.get("extract_time") or 0.0),
            num_vars=int(raw.get("num_vars") or 0),
            num_clauses=int(raw.get("num_clauses") or 0),
            backend=str(raw.get("backend") or "fresh"),
            limit_reason=raw.get("limit_reason"))
        return cls(key=CellKey(*raw_key), spec=spec, limits=limits,
                   result=result,
                   bounds=_bounds_from_payload(payload.get("bounds")),
                   meta=dict(payload.get("meta") or {}))


class ResultStore:
    """The sharded, versioned, crash-safe corpus result store."""

    def __init__(self, root: str) -> None:
        self.root = root
        self.shards_dir = os.path.join(root, "shards")
        self.quarantine_dir = os.path.join(root, "quarantine")
        os.makedirs(self.shards_dir, exist_ok=True)
        self.hits = 0
        self.misses = 0
        self.appends = 0
        self.quarantined = 0
        self._records: Dict[str, CorpusRecord] = {}
        self._dirty: Set[str] = set()
        self._load()

    # -- loading --------------------------------------------------------

    def _load(self) -> None:
        index_path = os.path.join(self.root, "index.json")
        if os.path.exists(index_path):
            with open(index_path, "r", encoding="utf-8") as handle:
                index = json.load(handle)
            version = index.get("version")
            if version != STORE_VERSION:
                raise StoreVersionError(
                    f"store at {self.root} has version {version!r}; "
                    f"this build speaks {STORE_VERSION}")
        for name in sorted(os.listdir(self.shards_dir)):
            if not name.endswith(".jsonl"):
                continue
            self._load_shard(name)

    def _load_shard(self, name: str) -> None:
        path = os.path.join(self.shards_dir, name)
        loaded: List[Tuple[str, CorpusRecord]] = []
        try:
            with open(path, "r", encoding="utf-8") as handle:
                for line in handle:
                    line = line.strip()
                    if not line:
                        continue
                    record = CorpusRecord.from_json(json.loads(line))
                    loaded.append((record.key.digest(), record))
        except (ValueError, KeyError, TypeError):
            self._quarantine(name)
            return
        for digest, record in loaded:
            self._records[digest] = record

    def _quarantine(self, name: str) -> None:
        """Move a corrupt shard aside; its cells will simply re-run."""
        os.makedirs(self.quarantine_dir, exist_ok=True)
        source = os.path.join(self.shards_dir, name)
        target = os.path.join(self.quarantine_dir, name + ".corrupt")
        os.replace(source, target)
        self.quarantined += 1
        obs_count("corpus.store.quarantined")

    # -- lookup / append ------------------------------------------------

    def __len__(self) -> int:
        return len(self._records)

    def __contains__(self, key: CellKey) -> bool:
        return key.digest() in self._records

    def __iter__(self) -> Iterator[CorpusRecord]:
        for digest in sorted(self._records):
            yield self._records[digest]

    def get(self, key: CellKey) -> Optional[CorpusRecord]:
        record = self._records.get(key.digest())
        if record is not None:
            self.hits += 1
            obs_count("corpus.store.hits")
        else:
            self.misses += 1
            obs_count("corpus.store.misses")
        return record

    def put(self, record: CorpusRecord, flush: bool = True) -> None:
        digest = record.key.digest()
        self._records[digest] = record
        self._dirty.add(digest[:2])
        self.appends += 1
        obs_count("corpus.store.appends")
        if flush:
            self.flush()

    def flush(self) -> None:
        """Atomically persist every dirty shard, then the index."""
        if not self._dirty:
            return
        by_shard: Dict[str, List[str]] = {s: [] for s in self._dirty}
        for digest in sorted(self._records):
            shard = digest[:2]
            if shard in by_shard:
                line = json.dumps(self._records[digest].to_json(),
                                  sort_keys=True)
                by_shard[shard].append(line)
        for shard, lines in by_shard.items():
            self._write_atomic(
                os.path.join(self.shards_dir, f"{shard}.jsonl"),
                "".join(line + "\n" for line in lines))
        self._dirty.clear()
        shards = sorted(name for name in os.listdir(self.shards_dir)
                        if name.endswith(".jsonl"))
        index = {"version": STORE_VERSION, "shards": shards,
                 "records": len(self._records)}
        self._write_atomic(os.path.join(self.root, "index.json"),
                           json.dumps(index, sort_keys=True) + "\n")

    @staticmethod
    def _write_atomic(path: str, text: str) -> None:
        tmp = path + ".tmp"
        with open(tmp, "w", encoding="utf-8") as handle:
            handle.write(text)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, path)

    # -- summaries ------------------------------------------------------

    def by_status(self) -> Dict[str, int]:
        tally: Dict[str, int] = {}
        for record in self._records.values():
            status = record.result.status.value
            tally[status] = tally.get(status, 0) + 1
        return dict(sorted(tally.items()))

    def unknown_records(self) -> List[CorpusRecord]:
        """UNKNOWN cells (with their bounds), ready for bigger-budget
        retries."""
        return [record for record in self
                if record.result.status is Status.UNKNOWN]

    def __repr__(self) -> str:
        return (f"ResultStore({self.root!r}, records={len(self)}, "
                f"hits={self.hits}, misses={self.misses}, "
                f"quarantined={self.quarantined})")
