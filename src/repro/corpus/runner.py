"""Resumable corpus sweeps over synthetic grids.

A corpus lives in one directory::

    corpus/
      grids.jsonl   # the recipes: GridSpec + GeneratorConfig + fingerprints
      store/        # the ResultStore (shards, index, quarantine)

:func:`generate_corpus` writes ``grids.jsonl`` — each line a seeded
recipe plus the *precomputed* network/problem fingerprints, so later
runs can key store lookups without regenerating a single grid in the
parent process.  :func:`run_corpus` expands grids × properties ×
budgets into cells, skips every cell the store already holds, and
shards the rest across a :class:`~repro.engine.SweepExecutor` — one
task per grid, so workers amortize regeneration and encoding across
that grid's cells.  Workers screen each cell against the structural
attack bracket first (a certified bracket decides the cell with zero
solver queries) and record UNKNOWN verdicts together with the sound
:class:`~repro.core.search.SearchBounds`, so a later retry under a
bigger budget starts from what is already proven.

Resume semantics: kill a run at any point and start it again — cells
already persisted are skipped (the store is flushed after every grid),
cells in flight re-run, and verdicts are identical either way because
grids, specs, and limits are all fingerprint-keyed.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import asdict, dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from ..core.problem import ObservabilityProblem
from ..core.results import Status, ThreatVector, VerificationResult
from ..core.search import SearchBounds
from ..core.specs import Property, ResiliencySpec
from ..engine.engine import VerificationEngine
from ..engine.sweep import SweepExecutor, SweepTaskError
from ..obs.tracer import count as obs_count
from ..obs.tracer import observe as obs_observe
from ..sat.limits import Limits
from .store import (
    CellKey,
    CorpusRecord,
    ResultStore,
    limits_from_payload,
    limits_payload,
    spec_from_payload,
    spec_payload,
)
from .synth import GridSpec, grow_grid

__all__ = [
    "CorpusReport", "corpus_status", "generate_corpus", "load_grids",
    "run_corpus",
]

GRIDS_FILE = "grids.jsonl"
STORE_DIR = "store"


def _scada_config() -> Any:
    """The generator config class, imported lazily.

    ``repro.scada.generator`` pulls in the measurement sampling stack;
    deferring keeps ``import repro.corpus`` cheap for status-only use.
    """
    from ..scada.generator import GeneratorConfig

    return GeneratorConfig


def _materialize(entry: Mapping[str, Any]
                 ) -> Tuple[Any, ObservabilityProblem]:
    """Regenerate (network, problem) from a grids.jsonl *entry*.

    Verifies the regenerated fingerprints against the recorded ones:
    any drift (a changed generator, a different platform RNG) must fail
    loudly rather than silently file results under stale keys.
    """
    from ..scada.generator import generate_scada

    spec = GridSpec.from_json(entry["grid"])
    config = _scada_config()(**entry["scada"])
    synthetic = generate_scada(grow_grid(spec), config)
    problem = ObservabilityProblem.from_table(synthetic.table)
    network = synthetic.network
    got = (network.fingerprint(), problem.fingerprint())
    want = (entry["network_fingerprint"], entry["problem_fingerprint"])
    if got != want:
        raise RuntimeError(
            f"grid {spec.name}: regenerated fingerprints {got} do not "
            f"match recorded {want}; the generator drifted and the "
            f"store keys are stale")
    return network, problem


def generate_corpus(root: str, sizes: Sequence[int],
                    seeds: Sequence[int] = (0,),
                    avg_degree: float = 3.0,
                    preferential: float = 0.8,
                    meshing: float = 0.3,
                    scada: Optional[Any] = None) -> List[Dict[str, Any]]:
    """Write ``grids.jsonl`` under *root*: one recipe per size × seed.

    Grids are actually grown once here — to validate the recipe and to
    precompute the fingerprints that key every later store lookup — and
    then only their recipes are persisted.
    """
    config = scada if scada is not None else _scada_config()()
    from ..scada.generator import generate_scada

    os.makedirs(root, exist_ok=True)
    entries: List[Dict[str, Any]] = []
    for num_buses in sizes:
        for seed in seeds:
            spec = GridSpec(num_buses=num_buses, avg_degree=avg_degree,
                            preferential=preferential, meshing=meshing,
                            seed=seed)
            synthetic = generate_scada(grow_grid(spec), config)
            problem = ObservabilityProblem.from_table(synthetic.table)
            entries.append({
                "grid": spec.to_json(),
                "scada": asdict(config),
                "network_fingerprint":
                    synthetic.network.fingerprint(),
                "problem_fingerprint": problem.fingerprint(),
                "num_buses": num_buses,
                "num_devices": synthetic.num_devices,
                "num_measurements": len(problem.state_sets),
            })
            obs_count("corpus.grids.generated")
    path = os.path.join(root, GRIDS_FILE)
    tmp = path + ".tmp"
    with open(tmp, "w", encoding="utf-8") as handle:
        for entry in entries:
            handle.write(json.dumps(entry, sort_keys=True) + "\n")
    os.replace(tmp, path)
    return entries


def load_grids(root: str) -> List[Dict[str, Any]]:
    path = os.path.join(root, GRIDS_FILE)
    if not os.path.exists(path):
        raise FileNotFoundError(
            f"no {GRIDS_FILE} under {root}; run corpus generate first")
    entries = []
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if line:
                entries.append(json.loads(line))
    return entries


# -- the per-grid worker ------------------------------------------------


def _screen_cell(engine: VerificationEngine, spec: ResiliencySpec
                 ) -> Optional[VerificationResult]:
    """Decide *spec* from the structural attack bracket, if it can.

    A cell (property, k) is resilient iff ``k`` is strictly below the
    minimal attack cardinality ``c``.  A certified lower bound ``l``
    proves resilience for every ``k < l``; a witness of size ``u``
    proves a threat for every ``k >= u``.  Only total budgets without
    link failures translate this directly.
    """
    if spec.budget.k is None or spec.link_k is not None:
        return None
    k = spec.budget.k
    bounds = engine.structural().attack_bounds(spec.property, r=spec.r)
    if bounds.certified and k < bounds.lower:
        return VerificationResult(spec=spec, status=Status.RESILIENT,
                                  backend="structural")
    if bounds.upper is not None and bounds.upper <= k:
        ieds = set(engine.network.ied_ids)
        witness = frozenset(bounds.witness)
        threat = ThreatVector(
            failed_ieds=frozenset(d for d in witness if d in ieds),
            failed_rtus=frozenset(d for d in witness if d not in ieds))
        return VerificationResult(spec=spec, status=Status.THREAT_FOUND,
                                  threat=threat, backend="structural")
    return None


def _unknown_bounds(engine: VerificationEngine,
                    spec: ResiliencySpec) -> Optional[SearchBounds]:
    """The sound resiliency bracket to persist with an UNKNOWN cell."""
    if spec.budget.k is None:
        return None
    k = spec.budget.k
    bounds = engine.structural().attack_bounds(spec.property, r=spec.r)
    lower = bounds.lower - 1 if bounds.certified else -1
    upper = (bounds.upper - 1 if bounds.upper is not None
             else len(engine.network.field_device_ids))
    return SearchBounds(lower=lower, upper=max(upper, lower),
                        unknown_budgets=(k,))


def _run_cells(task: Mapping[str, Any]) -> List[Dict[str, Any]]:
    """Pool worker: run every pending cell of one grid.

    Module-level and driven entirely by JSON-able payloads, so it
    pickles across :class:`~repro.engine.SweepExecutor` pools.  Returns
    the finished cells as :class:`CorpusRecord` payload dicts; the
    parent decodes and persists them.
    """
    network, problem = _materialize(task["entry"])
    limits = limits_from_payload(task["limits"])
    engine = VerificationEngine(
        network, problem, backend=str(task.get("backend", "fresh")),
        card_encoding=str(task.get("card_encoding", "totalizer")),
        lint=False)
    records: List[Dict[str, Any]] = []
    for cell in task["cells"]:
        spec = spec_from_payload(cell["spec"])
        started = time.perf_counter()
        result = _screen_cell(engine, spec)
        screened = result is not None
        if result is None:
            result = engine.verify(spec, minimize=False, limits=limits)
        bounds = (_unknown_bounds(engine, spec)
                  if result.status is Status.UNKNOWN else None)
        obs_observe("corpus.cell.ms",
                    (time.perf_counter() - started) * 1e3)
        if screened:
            obs_count("corpus.cells.screened")
        elif result.status is Status.UNKNOWN:
            obs_count("corpus.cells.unknown")
        else:
            obs_count("corpus.cells.solved")
        key = CellKey(*cell["key"])
        record = CorpusRecord(
            key=key, spec=spec, limits=limits, result=result,
            bounds=bounds,
            meta={"grid": task["entry"]["grid"],
                  "num_buses": task["entry"]["num_buses"],
                  "screened": screened})
        records.append(record.to_json())
    return records


# -- the driver ---------------------------------------------------------


@dataclass
class CorpusReport:
    """What one :func:`run_corpus` call did."""

    grids: int = 0
    cells: int = 0
    skipped: int = 0
    screened: int = 0
    solved: int = 0
    unknown: int = 0
    resilient: int = 0
    threats: int = 0
    wall_time: float = 0.0
    failures: List[str] = field(default_factory=list)
    #: cell digest → status value, covering skipped *and* fresh cells —
    #: this is what lets a resumed run prove verdict identity.
    verdicts: Dict[str, str] = field(default_factory=dict)

    def to_json(self) -> Dict[str, Any]:
        return {
            "grids": self.grids, "cells": self.cells,
            "skipped": self.skipped, "screened": self.screened,
            "solved": self.solved, "unknown": self.unknown,
            "resilient": self.resilient, "threats": self.threats,
            "wall_time": self.wall_time,
            "failures": list(self.failures),
            "verdicts": dict(sorted(self.verdicts.items())),
        }

    def summary(self) -> str:
        parts = [f"{self.cells} cell(s) over {self.grids} grid(s): "
                 f"{self.skipped} resumed, {self.screened} screened, "
                 f"{self.solved} solved, {self.unknown} unknown "
                 f"({self.wall_time:.2f}s)"]
        parts.append(f"  verdicts: {self.resilient} resilient, "
                     f"{self.threats} threat(s)")
        if self.failures:
            parts.append(f"  failures: {len(self.failures)}")
        return "\n".join(parts)


def _tally(report: CorpusReport, record: CorpusRecord,
           skipped: bool) -> None:
    report.verdicts[record.key.digest()] = record.result.status.value
    if skipped:
        report.skipped += 1
    elif record.meta.get("screened"):
        report.screened += 1
    elif record.result.status is Status.UNKNOWN:
        report.unknown += 1
    else:
        report.solved += 1
    if record.result.status is Status.RESILIENT:
        report.resilient += 1
    elif record.result.status is Status.THREAT_FOUND:
        report.threats += 1


def run_corpus(root: str,
               properties: Sequence[Property] = (
                   Property.OBSERVABILITY,),
               ks: Sequence[int] = (0, 1, 2),
               r: int = 1,
               limits: Optional[Limits] = None,
               jobs: Optional[int] = 1,
               timeout: Optional[float] = None,
               retries: int = 0,
               backend: str = "fresh",
               card_encoding: str = "totalizer",
               resume: bool = True) -> CorpusReport:
    """Sweep every grid × property × budget cell, resumably.

    With ``resume=True`` (default) cells whose exact (grid fingerprint,
    spec, limits) key is already stored are not re-run — their stored
    verdicts still appear in the report, so a resumed run's verdict map
    equals a cold run's.  ``resume=False`` recomputes everything
    (overwriting in place), which is how the benchmarks prove verdict
    identity.
    """
    started = time.perf_counter()
    entries = load_grids(root)
    store = ResultStore(os.path.join(root, STORE_DIR))
    report = CorpusReport(grids=len(entries))
    specs = [ResiliencySpec.for_property(prop, r=r, k=k)
             for prop in properties for k in ks]
    limits_pay = limits_payload(limits)

    tasks: List[Dict[str, Any]] = []
    for entry in entries:
        pending: List[Dict[str, Any]] = []
        for spec in specs:
            report.cells += 1
            obs_count("corpus.cells")
            key = CellKey.for_cell(entry["network_fingerprint"],
                                   entry["problem_fingerprint"],
                                   spec, limits)
            stored = store.get(key) if resume else None
            if stored is not None:
                obs_count("corpus.cells.skipped")
                _tally(report, stored, skipped=True)
                continue
            pending.append({"spec": spec_payload(spec),
                            "key": list(key)})
        if pending:
            tasks.append({"entry": entry, "cells": pending,
                          "limits": limits_pay, "backend": backend,
                          "card_encoding": card_encoding})

    if tasks:
        executor = SweepExecutor(jobs=jobs)
        outcomes = executor.map(_run_cells, tasks, timeout=timeout,
                                retries=retries, on_error="return")
        for outcome in outcomes:
            if isinstance(outcome, SweepTaskError):
                report.failures.append(str(outcome))
                continue
            for payload in outcome:
                record = CorpusRecord.from_json(payload)
                store.put(record, flush=False)
                _tally(report, record, skipped=False)
            # Flush per grid: a kill between grids loses at most the
            # grid in flight, and the resume skips everything flushed.
            store.flush()
    report.wall_time = time.perf_counter() - started
    return report


def corpus_status(root: str) -> Dict[str, Any]:
    """Summarize a corpus directory without running anything."""
    entries = load_grids(root)
    store = ResultStore(os.path.join(root, STORE_DIR))
    unknowns = [{
        "grid": record.meta.get("grid", {}).get("num_buses"),
        "spec": record.spec.describe(),
        "bounds": (record.bounds.describe()
                   if record.bounds is not None else None),
        "limit_reason": record.result.limit_reason,
    } for record in store.unknown_records()]
    return {
        "root": root,
        "grids": len(entries),
        "buses": sorted({entry["num_buses"] for entry in entries}),
        "records": len(store),
        "by_status": store.by_status(),
        "quarantined_shards": store.quarantined,
        "unknown_cells": unknowns,
    }
