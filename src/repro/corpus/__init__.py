"""Corpus-scale verification: synthetic grids, a persistent result
store, and resumable sweeps.

The paper's evaluation stops at IEEE-118; this package grows seeded
synthetic transmission grids to thousands of buses
(:mod:`repro.corpus.synth`), persists every verification verdict in a
versioned sharded store keyed by encoding fingerprints
(:mod:`repro.corpus.store`), and drives resumable grid × property ×
budget sweeps across a process pool (:mod:`repro.corpus.runner`).
"""

from .runner import (
    CorpusReport,
    corpus_status,
    generate_corpus,
    load_grids,
    run_corpus,
)
from .store import (
    STORE_VERSION,
    CellKey,
    CorpusRecord,
    ResultStore,
    StoreVersionError,
)
from .synth import GridSpec, grow_grid

__all__ = [
    "STORE_VERSION", "CellKey", "CorpusRecord", "CorpusReport",
    "GridSpec", "ResultStore", "StoreVersionError", "corpus_status",
    "generate_corpus", "grow_grid", "load_grids", "run_corpus",
]
