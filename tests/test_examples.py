"""Every example script must run cleanly end to end."""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = sorted(
    (pathlib.Path(__file__).parent.parent / "examples").glob("*.py"))


@pytest.mark.parametrize("script", EXAMPLES, ids=lambda p: p.stem)
@pytest.mark.slow
def test_example_runs(script):
    completed = subprocess.run(
        [sys.executable, str(script)],
        capture_output=True, text=True, timeout=600)
    assert completed.returncode == 0, completed.stderr
    assert completed.stdout.strip(), "example produced no output"


def test_quickstart_runs_fast():
    script = pathlib.Path(__file__).parent.parent / "examples" / \
        "quickstart.py"
    completed = subprocess.run(
        [sys.executable, str(script)],
        capture_output=True, text=True, timeout=120)
    assert completed.returncode == 0, completed.stderr
    assert "HOLDS" in completed.stdout
    assert "threat vectors" in completed.stdout
