"""The ``repro corpus`` command family."""

import json

import pytest

from repro.cli import main

GEN_ARGS = ["--sizes", "30", "40", "--measurement-fraction", "0.4",
            "--rtus-per-bus", "0.1", "--scada-seed", "3"]


@pytest.fixture
def corpus_root(tmp_path):
    root = str(tmp_path / "corpus")
    assert main(["corpus", "generate", root] + GEN_ARGS) == 0
    return root


def test_generate_prints_fingerprints(tmp_path, capsys):
    root = str(tmp_path / "corpus")
    assert main(["corpus", "generate", root] + GEN_ARGS) == 0
    out = capsys.readouterr().out
    assert "2 grid recipe(s)" in out
    assert "30 buses" in out and "40 buses" in out


def test_run_exit_code_reflects_verdicts(corpus_root, capsys):
    # These grids have threats at k>=1, so the sweep exits 1 — the
    # same convention as verify.
    code = main(["corpus", "run", corpus_root, "--ks", "0", "1"])
    out = capsys.readouterr().out
    assert code == 1
    assert "4 cell(s)" in out and "0 resumed" in out


def test_resumed_run_skips_and_agrees(corpus_root, capsys):
    main(["corpus", "run", corpus_root, "--ks", "0", "1", "--json"])
    cold = json.loads(capsys.readouterr().out)
    code = main(["corpus", "run", corpus_root, "--ks", "0", "1",
                 "--json"])
    resumed = json.loads(capsys.readouterr().out)
    assert code == 1
    assert resumed["skipped"] == 4
    assert resumed["solved"] == resumed["screened"] == 0
    assert resumed["verdicts"] == cold["verdicts"]


def test_unknown_cells_exit_3_even_when_resumed(corpus_root, capsys,
                                                monkeypatch):
    import repro.corpus.runner as runner_mod

    monkeypatch.setattr(runner_mod, "_screen_cell",
                        lambda engine, spec: None)
    code = main(["corpus", "run", corpus_root, "--ks", "1",
                 "--max-conflicts", "0"])
    capsys.readouterr()
    assert code == 3
    # The stored UNKNOWN still gates the exit code on resume: the
    # sweep as a whole proved less than was asked of it.
    assert main(["corpus", "run", corpus_root, "--ks", "1",
                 "--max-conflicts", "0"]) == 3


def test_status_command(corpus_root, capsys):
    main(["corpus", "run", corpus_root, "--ks", "0"])
    capsys.readouterr()
    assert main(["corpus", "status", corpus_root]) == 0
    out = capsys.readouterr().out
    assert "2 grid(s)" in out and "2 stored cell(s)" in out
    assert main(["corpus", "status", corpus_root, "--json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["records"] == 2


def test_missing_corpus_exits_2(tmp_path, capsys):
    code = main(["corpus", "run", str(tmp_path / "nowhere")])
    err = capsys.readouterr().err
    assert code == 2
    assert "corpus generate" in err


def test_run_with_trace_feeds_stats(corpus_root, tmp_path, capsys):
    trace = str(tmp_path / "trace.jsonl")
    main(["corpus", "run", corpus_root, "--ks", "0", "--trace", trace])
    capsys.readouterr()
    assert main(["stats", trace]) == 0
    out = capsys.readouterr().out
    assert "corpus: 2 cell(s)" in out
    assert "record(s) appended" in out
