"""Resumable corpus sweeps."""

import json

import pytest

import repro.corpus.runner as runner_mod
from repro.core.specs import Property
from repro.corpus import (
    corpus_status,
    generate_corpus,
    load_grids,
    run_corpus,
)
from repro.sat.limits import Limits
from repro.scada.generator import GeneratorConfig


def _small_config():
    # Lean knobs so a test corpus generates and verifies in
    # milliseconds per grid.
    return GeneratorConfig(measurement_fraction=0.4, rtus_per_bus=0.1,
                           seed=3)


@pytest.fixture
def corpus_root(tmp_path):
    root = str(tmp_path / "corpus")
    generate_corpus(root, sizes=[30, 40], seeds=[0],
                    scada=_small_config())
    return root


def test_generate_writes_recipes_with_fingerprints(corpus_root):
    entries = load_grids(corpus_root)
    assert [e["num_buses"] for e in entries] == [30, 40]
    for entry in entries:
        assert len(entry["network_fingerprint"]) == 16
        assert len(entry["problem_fingerprint"]) == 16
        assert entry["num_devices"] > 0
        assert entry["scada"]["seed"] == 3


def test_load_grids_without_generate_errors(tmp_path):
    with pytest.raises(FileNotFoundError, match="corpus generate"):
        load_grids(str(tmp_path / "nowhere"))


def test_cold_run_then_resume_skips_everything(corpus_root):
    cold = run_corpus(corpus_root, ks=(0, 1, 2))
    assert cold.cells == 6 and cold.skipped == 0
    assert cold.resilient + cold.threats + cold.unknown == 6
    assert not cold.failures

    resumed = run_corpus(corpus_root, ks=(0, 1, 2))
    assert resumed.skipped == 6
    assert resumed.screened == resumed.solved == resumed.unknown == 0
    # The acceptance property: identical verdicts either way.
    assert resumed.verdicts == cold.verdicts


def test_interrupted_run_resumes_only_whats_missing(corpus_root):
    # Simulate a kill after the first grid × budget slice: run a
    # subset of the cells, then the full sweep.
    partial = run_corpus(corpus_root, ks=(0,))
    assert partial.cells == 2 and partial.skipped == 0
    full = run_corpus(corpus_root, ks=(0, 1))
    assert full.cells == 4
    assert full.skipped == 2  # exactly the cells the partial run did
    assert all(digest in full.verdicts for digest in partial.verdicts)


def test_verdicts_agree_between_inline_and_pool(corpus_root, tmp_path):
    inline = run_corpus(corpus_root, ks=(0, 1))
    other = str(tmp_path / "other")
    generate_corpus(other, sizes=[30, 40], seeds=[0],
                    scada=_small_config())
    pooled = run_corpus(other, ks=(0, 1), jobs=2)
    assert pooled.verdicts == inline.verdicts


def test_unscreenable_cells_hit_the_solver(corpus_root, monkeypatch):
    # Force the solver path: with screening disabled every cell must
    # be solved, and the verdicts must match the screened run exactly.
    screened = run_corpus(corpus_root, ks=(0, 1))
    monkeypatch.setattr(runner_mod, "_screen_cell",
                        lambda engine, spec: None)
    solved = run_corpus(corpus_root, ks=(0, 1), resume=False)
    assert solved.solved + solved.unknown == 4
    assert solved.screened == 0
    assert solved.verdicts == screened.verdicts


def test_starved_solver_records_unknown_with_bounds(
        corpus_root, monkeypatch):
    monkeypatch.setattr(runner_mod, "_screen_cell",
                        lambda engine, spec: None)
    starved = run_corpus(corpus_root, ks=(1,),
                         limits=Limits(max_propagations=1))
    assert starved.unknown == 2
    assert set(starved.verdicts.values()) == {"unknown"}
    status = corpus_status(corpus_root)
    assert status["by_status"]["unknown"] == 2
    assert len(status["unknown_cells"]) == 2
    for cell in status["unknown_cells"]:
        assert cell["bounds"] is not None
        assert cell["limit_reason"] == "propagations"

    # Same limits → skipped; a bigger budget is a *different* cell and
    # re-runs to a real verdict.
    again = run_corpus(corpus_root, ks=(1,),
                       limits=Limits(max_propagations=1))
    assert again.skipped == 2
    retried = run_corpus(corpus_root, ks=(1,))
    assert retried.skipped == 0
    assert set(retried.verdicts.values()) <= {"resilient",
                                              "threat-found"}


def test_fingerprint_drift_fails_loudly(corpus_root, tmp_path):
    entries = load_grids(corpus_root)
    entries[0]["network_fingerprint"] = "0" * 16
    grids = tmp_path / "corpus" / "grids.jsonl"
    grids.write_text("".join(json.dumps(e) + "\n" for e in entries))
    report = run_corpus(corpus_root, ks=(0,))
    assert len(report.failures) == 1
    assert "drifted" in report.failures[0]
    # The healthy grid's cells still completed and persisted.
    assert report.verdicts


def test_status_summarizes_without_running(corpus_root):
    run_corpus(corpus_root, ks=(0,))
    status = corpus_status(corpus_root)
    assert status["grids"] == 2
    assert status["buses"] == [30, 40]
    assert status["records"] == 2
    assert status["quarantined_shards"] == 0
    assert sum(status["by_status"].values()) == 2


def test_bad_data_and_secured_properties_sweep(corpus_root):
    report = run_corpus(
        corpus_root,
        properties=(Property.SECURED_OBSERVABILITY,
                    Property.BAD_DATA_DETECTABILITY),
        ks=(0, 1), r=2)
    assert report.cells == 8
    assert not report.failures
    assert len(report.verdicts) == 8
