"""The synthetic corpus grid generator."""

import json
import subprocess
import sys

import pytest

from repro.corpus.synth import GridSpec, grow_grid


def test_spec_validation():
    with pytest.raises(ValueError, match="at least 4 buses"):
        GridSpec(num_buses=3)
    with pytest.raises(ValueError, match="preferential"):
        GridSpec(num_buses=10, preferential=1.5)
    with pytest.raises(ValueError, match="meshing"):
        GridSpec(num_buses=10, meshing=-0.1)
    with pytest.raises(ValueError, match="more"):
        GridSpec(num_buses=5, avg_degree=10.0)
    # Boundaries are legal.
    GridSpec(num_buses=4, preferential=0.0, meshing=1.0)


def test_branch_count_matches_target_degree():
    spec = GridSpec(num_buses=100, avg_degree=3.0)
    grid = grow_grid(spec)
    assert grid.num_buses == 100
    assert grid.num_branches == spec.num_branches == 150


def test_grown_grid_is_connected_and_sparse():
    for seed in range(3):
        spec = GridSpec(num_buses=200, seed=seed)
        grid = grow_grid(spec)
        assert grid.is_connected()
        degrees = [len(grid.neighbors(b)) for b in range(1, 201)]
        mean = sum(degrees) / len(degrees)
        assert 2.5 <= mean <= 3.5
        # Preferential attachment yields hubs well above the mean.
        assert max(degrees) >= 3 * mean


def test_same_spec_same_grid_different_seed_different_grid():
    a = grow_grid(GridSpec(num_buses=50, seed=1))
    b = grow_grid(GridSpec(num_buses=50, seed=1))
    c = grow_grid(GridSpec(num_buses=50, seed=2))
    pairs = lambda g: {(br.from_bus, br.to_bus) for br in g.branches}
    assert pairs(a) == pairs(b)
    assert pairs(a) != pairs(c)


def test_spec_json_roundtrip_and_fingerprint():
    spec = GridSpec(num_buses=64, avg_degree=2.8, preferential=0.5,
                    meshing=0.7, seed=9)
    clone = GridSpec.from_json(spec.to_json())
    assert clone == spec
    assert clone.fingerprint() == spec.fingerprint()
    assert len(spec.fingerprint()) == 16
    assert spec.fingerprint() != GridSpec(num_buses=64).fingerprint()


def test_fingerprints_stable_across_processes():
    # The property the whole store keying rests on: growing the same
    # spec in a *fresh interpreter* yields bit-identical downstream
    # fingerprints.  A platform- or hash-randomization-dependent
    # generator would break resume silently.
    spec = GridSpec(num_buses=80, seed=4)
    script = (
        "import json\n"
        "from repro.corpus.synth import GridSpec, grow_grid\n"
        "from repro.scada.generator import generate_scada\n"
        "from repro.core.problem import ObservabilityProblem\n"
        f"spec = GridSpec.from_json({spec.to_json()!r})\n"
        "s = generate_scada(grow_grid(spec))\n"
        "p = ObservabilityProblem.from_table(s.table)\n"
        "print(json.dumps([s.network.fingerprint(), p.fingerprint()]))\n"
    )
    runs = [
        subprocess.run([sys.executable, "-c", script],
                       capture_output=True, text=True, check=True)
        for _ in range(2)
    ]
    first, second = (json.loads(run.stdout) for run in runs)
    assert first == second

    from repro.core.problem import ObservabilityProblem
    from repro.scada.generator import generate_scada
    synthetic = generate_scada(grow_grid(spec))
    problem = ObservabilityProblem.from_table(synthetic.table)
    assert [synthetic.network.fingerprint(),
            problem.fingerprint()] == first


def test_meshing_knob_localizes_chords():
    # With meshing=1 every chord joins buses grown at nearby times, so
    # index distance stays within the window; with meshing=0 chords
    # roam (low-degree bias), producing longer-range links.
    n = 400
    local = grow_grid(GridSpec(num_buses=n, meshing=1.0, seed=0))
    roam = grow_grid(GridSpec(num_buses=n, meshing=0.0, seed=0))

    def chord_spans(grid):
        # Edges are laid down in construction order: 3 seed edges,
        # then one growth uplink per bus 4..n, then the chords — so
        # every branch with index > n is a meshing chord.
        return [abs(br.from_bus - br.to_bus) for br in grid.branches
                if br.index > n]

    assert max(chord_spans(local)) <= max(2, n // 20)
    assert max(chord_spans(roam)) > n // 20
