"""The versioned sharded corpus result store."""

import json
import os

import pytest

from repro.core.results import Status, ThreatVector, VerificationResult
from repro.core.search import SearchBounds
from repro.core.specs import Property, ResiliencySpec
from repro.corpus.store import (
    STORE_VERSION,
    CellKey,
    CorpusRecord,
    ResultStore,
    StoreVersionError,
    limits_from_payload,
    limits_payload,
    spec_from_payload,
    spec_payload,
)
from repro.sat.limits import Limits


def _key(tag="aa"):
    return CellKey(f"net-{tag}", f"prob-{tag}", f"spec-{tag}",
                   f"lim-{tag}")


def _spec(k=1, prop=Property.OBSERVABILITY, r=1):
    return ResiliencySpec.for_property(prop, r=r, k=k)


def _record(tag="aa", status=Status.RESILIENT, **kwargs):
    spec = kwargs.pop("spec", _spec())
    result = VerificationResult(spec=spec, status=status, **kwargs)
    return CorpusRecord(key=_key(tag), spec=spec,
                        limits=kwargs.get("limits"), result=result)


def test_spec_payload_roundtrips_every_property():
    specs = [
        ResiliencySpec.observability(k=2),
        ResiliencySpec.observability(k1=1, k2=2),
        ResiliencySpec.secured_observability(k=0, link_k=1),
        ResiliencySpec.bad_data_detectability(r=2, k=3),
        ResiliencySpec.command_deliverability(k1=0, k2=1),
    ]
    for spec in specs:
        assert spec_from_payload(spec_payload(spec)) == spec


def test_limits_payload_roundtrips():
    assert limits_from_payload(limits_payload(None)) is None
    limits = Limits(max_time=1.5, max_conflicts=100)
    assert limits_from_payload(limits_payload(limits)) == limits


@pytest.mark.parametrize("status", list(Status))
def test_record_roundtrips_every_status(status):
    # The store must reproduce every verdict bit-for-bit, including
    # UNKNOWN with its search bounds — that is what makes a resumed
    # sweep's verdicts provably identical to a cold one's.
    spec = _spec(k=2)
    threat = (ThreatVector(failed_ieds=frozenset({1, 2}),
                           failed_rtus=frozenset({9}),
                           failed_links=frozenset({(3, 4)}),
                           undelivered_measurements=frozenset({5}),
                           uncovered_states=frozenset({6}),
                           minimal=True)
              if status is Status.THREAT_FOUND else None)
    bounds = (SearchBounds(lower=0, upper=5, unknown_budgets=(2,))
              if status is Status.UNKNOWN else None)
    record = CorpusRecord(
        key=_key(), spec=spec, limits=Limits(max_conflicts=50),
        result=VerificationResult(
            spec=spec, status=status, threat=threat, solve_time=0.25,
            encode_time=0.5, extract_time=0.125, num_vars=100,
            num_clauses=300, backend="fresh",
            limit_reason="conflicts" if status is Status.UNKNOWN
            else None),
        bounds=bounds, meta={"grid": {"num_buses": 30}})
    clone = CorpusRecord.from_json(
        json.loads(json.dumps(record.to_json())))
    assert clone.key == record.key
    assert clone.spec == record.spec
    assert clone.limits == record.limits
    assert clone.result.status is status
    assert clone.result.threat == threat
    assert clone.result.solve_time == 0.25
    assert clone.result.limit_reason == record.result.limit_reason
    assert clone.bounds == bounds
    assert clone.meta == record.meta


def test_put_get_and_persistence(tmp_path):
    root = str(tmp_path / "store")
    store = ResultStore(root)
    record = _record("aa")
    assert store.get(record.key) is None
    assert store.misses == 1
    store.put(record)
    assert record.key in store
    # A brand-new store instance reads it back from disk.
    reopened = ResultStore(root)
    assert len(reopened) == 1
    got = reopened.get(record.key)
    assert got is not None and got.result.status is Status.RESILIENT
    assert reopened.hits == 1


def test_records_shard_by_digest_prefix(tmp_path):
    store = ResultStore(str(tmp_path))
    records = [_record(f"t{i}") for i in range(20)]
    for record in records:
        store.put(record, flush=False)
    store.flush()
    shards = os.listdir(store.shards_dir)
    assert all(name.endswith(".jsonl") for name in shards)
    assert len(shards) > 1  # 20 random digests don't share one prefix
    for record in records:
        assert any(name.startswith(record.key.digest()[:2])
                   for name in shards)
    index = json.loads(
        (tmp_path / "index.json").read_text())
    assert index["version"] == STORE_VERSION
    assert index["records"] == 20


def test_corrupt_shard_is_quarantined_not_fatal(tmp_path):
    root = str(tmp_path)
    store = ResultStore(root)
    good, bad = _record("good"), _record("bad")
    store.put(good)
    store.put(bad)
    bad_shard = os.path.join(store.shards_dir,
                             bad.key.digest()[:2] + ".jsonl")
    with open(bad_shard, "a", encoding="utf-8") as handle:
        handle.write("{torn json\n")
    reopened = ResultStore(root)
    assert reopened.quarantined == 1
    assert bad.key not in reopened  # its shard's cells re-run
    if good.key.digest()[:2] != bad.key.digest()[:2]:
        assert good.key in reopened  # other shards are untouched
    quarantined = os.listdir(reopened.quarantine_dir)
    assert quarantined == [bad.key.digest()[:2] + ".jsonl.corrupt"]


def test_future_version_fails_loudly(tmp_path):
    root = str(tmp_path)
    store = ResultStore(root)
    store.put(_record())
    index_path = os.path.join(root, "index.json")
    index = json.loads(open(index_path).read())
    index["version"] = STORE_VERSION + 1
    with open(index_path, "w", encoding="utf-8") as handle:
        json.dump(index, handle)
    with pytest.raises(StoreVersionError, match="version"):
        ResultStore(root)


def test_future_record_version_quarantines_its_shard(tmp_path):
    root = str(tmp_path)
    store = ResultStore(root)
    record = _record()
    payload = record.to_json()
    payload["version"] = STORE_VERSION + 1
    shard = os.path.join(store.shards_dir, "zz.jsonl")
    with open(shard, "w", encoding="utf-8") as handle:
        handle.write(json.dumps(payload) + "\n")
    reopened = ResultStore(root)
    assert reopened.quarantined == 1
    assert len(reopened) == 0


def test_flush_is_atomic_no_tmp_left_behind(tmp_path):
    store = ResultStore(str(tmp_path))
    for i in range(5):
        store.put(_record(f"r{i}"))
    leftovers = [name for name in os.listdir(store.shards_dir)
                 if name.endswith(".tmp")]
    assert leftovers == []
    assert not os.path.exists(
        os.path.join(str(tmp_path), "index.json.tmp"))


def test_retry_under_bigger_limits_is_a_different_cell():
    spec = _spec(k=1)
    small = CellKey.for_cell("net", "prob", spec,
                             Limits(max_conflicts=10))
    big = CellKey.for_cell("net", "prob", spec,
                           Limits(max_conflicts=10_000))
    none = CellKey.for_cell("net", "prob", spec, None)
    assert small != big != none
    assert len({small.digest(), big.digest(), none.digest()}) == 3
    # ...while the same cell keys identically from any process.
    again = CellKey.for_cell("net", "prob", _spec(k=1),
                             Limits(max_conflicts=10))
    assert again == small


def test_by_status_and_unknown_records(tmp_path):
    store = ResultStore(str(tmp_path))
    store.put(_record("a", Status.RESILIENT))
    store.put(_record("b", Status.THREAT_FOUND,
                      threat=ThreatVector(frozenset({1}), frozenset())))
    unknown = _record("c", Status.UNKNOWN)
    unknown.bounds = SearchBounds(lower=0, upper=3,
                                  unknown_budgets=(1,))
    store.put(unknown)
    assert store.by_status() == {"resilient": 1, "threat-found": 1,
                                 "unknown": 1}
    pending = store.unknown_records()
    assert len(pending) == 1
    assert pending[0].bounds == unknown.bounds
