"""Layer-2b simplifier: correctness-preservation and proof plumbing."""

import random

from repro.lint import preprocess_cnf
from repro.sat import CNF, SatSolver
from repro.sat.proof import check_unsat_proof
from tests.conftest import brute_force_sat, random_cnf


def _solve(cnf, assumptions=()):
    solver = SatSolver()
    while solver.num_vars < cnf.num_vars:
        solver.new_var()
    ok = all(solver.add_clause(list(c)) for c in cnf.clauses)
    if not ok:
        return False, None
    result = solver.solve(assumptions=list(assumptions))
    return result, (list(solver.model) if result else None)


def test_randomized_solution_preservation():
    """Acceptance criterion: over >= 200 random instances the simplified
    formula has the same verdict, and extended models satisfy the
    original formula; preprocessing-refuted instances carry a checkable
    RUP proof."""
    rng = random.Random(2016)
    for trial in range(250):
        n, clauses = random_cnf(rng)
        cnf = CNF(num_vars=n, clauses=clauses)
        before = [list(c) for c in cnf.clauses]
        result = preprocess_cnf(cnf)
        assert cnf.clauses == before, "input must not be modified"

        expected = brute_force_sat(n, clauses)
        if result.unsat:
            assert not expected, f"trial {trial}: wrong unsat"
            assert result.proof_additions[-1] == []
            assert check_unsat_proof(cnf.clauses, result.proof_additions,
                                     num_vars=n)
            continue
        verdict, model = _solve(result.cnf)
        assert verdict == expected, f"trial {trial}: verdict changed"
        if verdict:
            extended = result.extend_model(model)
            assert cnf.evaluate(extended), \
                f"trial {trial}: extended model violates the original"


def test_randomized_equivalence_under_assumptions():
    """Frozen (assumption) variables survive: solving the simplified
    formula under random assumptions matches the original formula."""
    rng = random.Random(77)
    for trial in range(200):
        n, clauses = random_cnf(rng)
        cnf = CNF(num_vars=n, clauses=clauses)
        frozen = rng.sample(range(1, n + 1), rng.randint(1, n))
        assumptions = [v if rng.random() < 0.5 else -v
                       for v in rng.sample(frozen, rng.randint(1, len(frozen)))]
        result = preprocess_cnf(cnf, frozen=frozen)

        ref_verdict, _ = _solve(cnf, assumptions)
        if result.unsat:
            assert not brute_force_sat(n, clauses)
            continue
        verdict, model = _solve(result.cnf, assumptions)
        assert verdict == ref_verdict, f"trial {trial}"
        if verdict:
            extended = result.extend_model(model)
            assert cnf.evaluate(extended), f"trial {trial}"
            for lit in assumptions:
                assert extended[abs(lit)] == (lit > 0), \
                    f"trial {trial}: assumption {lit} not honored"


def test_frozen_variables_never_eliminated():
    """Regression: the simplifier must not eliminate assumption
    variables used by incremental solving."""
    rng = random.Random(5)
    for _ in range(50):
        n, clauses = random_cnf(rng)
        cnf = CNF(num_vars=n, clauses=clauses)
        frozen = set(rng.sample(range(1, n + 1), rng.randint(1, n)))
        result = preprocess_cnf(cnf, frozen=frozen)
        touched = {abs(var) for kind, var, _ in result._stack}
        assert not touched & frozen, (touched, frozen)


def test_frozen_derived_unit_stays_as_clause():
    """A frozen unit learned by propagation is re-added as an explicit
    unit clause, so an opposite-polarity assumption still conflicts."""
    cnf = CNF(clauses=[[1], [-1, 2]])
    result = preprocess_cnf(cnf, frozen=[1, 2])
    assert not result.unsat
    assert [1] in result.cnf.clauses
    assert [2] in result.cnf.clauses
    verdict, _ = _solve(result.cnf, assumptions=[-2])
    assert verdict is False


def test_pure_literal_elimination_and_reconstruction():
    cnf = CNF(clauses=[[1, 2], [1, 3], [-2, 3]])
    result = preprocess_cnf(cnf)
    assert not result.unsat
    model = result.extend_model([None] * (cnf.num_vars + 1))
    assert cnf.evaluate(model)


def test_subsumption_removes_superset_clause():
    cnf = CNF(clauses=[[1, 2], [1, 2, 3], [-1, -2], [-2, -3, 4]])
    result = preprocess_cnf(cnf, frozen=[1, 2, 3, 4])
    assert result.stats["subsumed"] >= 1
    assert [1, 2, 3] not in result.cnf.clauses


def test_conflict_detected_at_preprocessing_time():
    cnf = CNF(clauses=[[1], [-1]])
    result = preprocess_cnf(cnf)
    assert result.unsat
    assert result.proof_additions[-1] == []
    assert check_unsat_proof(cnf.clauses, result.proof_additions,
                             num_vars=cnf.num_vars)


def test_bve_eliminates_and_reconstructs():
    # x (var 2) is a plain connective: (1 v 2) & (-2 v 3)  ⇒  (1 v 3)
    cnf = CNF(clauses=[[1, 2], [-2, 3]])
    result = preprocess_cnf(cnf, frozen=[1, 3])
    assert result.stats["bve_eliminated"] + result.stats["pures"] >= 1
    verdict, model = _solve(result.cnf)
    assert verdict
    extended = result.extend_model(model)
    assert cnf.evaluate(extended)


def test_stats_shape():
    cnf = CNF(clauses=[[1, 2], [-1, 2], [2, 3]])
    stats = preprocess_cnf(cnf).stats
    for key in ("units", "pures", "subsumed", "strengthened",
                "bve_eliminated", "rounds", "original_vars",
                "original_clauses", "simplified_clauses",
                "eliminated_vars"):
        assert key in stats
    assert stats["original_clauses"] == 3
