"""Device-disjoint delivery flow (the SCADA013 engine)."""

from repro.lint import disjoint_delivery_flow


def test_single_chain_has_flow_one():
    result = disjoint_delivery_flow(
        source_ieds=[1], paths=[[1, 2, 3]], field_devices={1, 2}, sink=3)
    assert result.flow == 1
    assert not result.survives(1)
    # The minimum cut is a single device on the chain.
    assert len(result.cut_devices) == 1
    assert set(result.cut_devices) <= {1, 2}


def test_two_disjoint_routes():
    # Two IEDs, each with its own RTU to the MTU (5).
    result = disjoint_delivery_flow(
        source_ieds=[1, 2],
        paths=[[1, 3, 5], [2, 4, 5]],
        field_devices={1, 2, 3, 4}, sink=5)
    assert result.flow == 2
    assert result.survives(1)
    assert not result.survives(2)


def test_shared_rtu_is_the_bottleneck():
    # Both IEDs route through RTU 3: one failure (RTU 3) cuts delivery.
    result = disjoint_delivery_flow(
        source_ieds=[1, 2],
        paths=[[1, 3, 5], [2, 3, 5]],
        field_devices={1, 2, 3}, sink=5)
    assert result.flow == 1
    assert result.cut_devices == (3,)


def test_dual_homed_ied_still_costs_its_own_unit():
    # One IED with two RTU routes: the IED itself is the only min cut.
    result = disjoint_delivery_flow(
        source_ieds=[1],
        paths=[[1, 2, 5], [1, 3, 5]],
        field_devices={1, 2, 3}, sink=5)
    assert result.flow == 1
    assert result.cut_devices == (1,)


def test_routers_do_not_count_as_cut_devices():
    # Device 4 is a router (not in field_devices): infinite capacity.
    result = disjoint_delivery_flow(
        source_ieds=[1, 2],
        paths=[[1, 4, 5], [2, 4, 5]],
        field_devices={1, 2}, sink=5)
    assert result.flow == 2


def test_bound_early_exit_skips_cut():
    result = disjoint_delivery_flow(
        source_ieds=[1, 2],
        paths=[[1, 3, 5], [2, 4, 5]],
        field_devices={1, 2, 3, 4}, sink=5, bound=0)
    assert result.flow > 0
    assert result.cut_devices == ()


def test_no_sources_or_paths():
    empty = disjoint_delivery_flow([], [], set(), sink=1)
    assert empty.flow == 0 and empty.cut_devices == ()
    no_paths = disjoint_delivery_flow([1], [], {1}, sink=2)
    assert no_paths.flow == 0
