"""The ``repro lint`` subcommand and the verify-time lint gate."""

import json

import pytest

from repro.cli import main

BAD_CONFIG = """\
[system]
states = 2

[jacobian]
1 0
0 1

[devices]
ied = 1 2
rtu = 3
mtu = 4

[links]
1 3
2 3
3 4

[measurements]
1: 1
99: 2
"""

GOOD_CONFIG = BAD_CONFIG.replace("99: 2", "2: 2")


@pytest.fixture
def bad_cfg(tmp_path):
    path = tmp_path / "bad.scada"
    path.write_text(BAD_CONFIG)
    return str(path)


@pytest.fixture
def good_cfg(tmp_path):
    path = tmp_path / "good.scada"
    path.write_text(GOOD_CONFIG)
    return str(path)


def test_lint_dangling_mapping_text(bad_cfg, capsys):
    assert main(["lint", bad_cfg]) == 1
    out = capsys.readouterr().out
    assert "error[SCADA001]" in out
    assert "device 99" in out


def test_lint_dangling_mapping_json(bad_cfg, capsys):
    assert main(["lint", bad_cfg, "--format", "json"]) == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload["exit_code"] == 1
    assert any(d["code"] == "SCADA001" for d in payload["diagnostics"])


def test_lint_clean_config_exits_zero(good_cfg, capsys):
    assert main(["lint", good_cfg]) == 0
    out = capsys.readouterr().out
    assert "0 errors" not in out  # summary counts only non-zero buckets
    assert "error[" not in out


def test_lint_builtin_case_study_exits_zero(capsys):
    """Acceptance criterion: the paper's 5-bus case lints clean."""
    assert main(["lint", "fig3"]) == 0
    out = capsys.readouterr().out
    assert "SCADA009" in out  # the two hmac-128 IEDs are warnings
    assert main(["lint", "fig4"]) == 0
    capsys.readouterr()


def test_lint_with_spec_can_upgrade_to_error(capsys):
    code = main(["lint", "fig3", "--property", "secured-observability",
                 "--k", "1"])
    out = capsys.readouterr().out
    assert code == 1
    assert "error[SCADA009]" in out


def test_lint_unparseable_config(tmp_path, capsys):
    path = tmp_path / "broken.scada"
    path.write_text("[nonsense]\nstuff\n")
    assert main(["lint", str(path)]) == 2
    out = capsys.readouterr().out
    assert "CONFIG001" in out


def test_lint_missing_file(capsys):
    assert main(["lint", "/does/not/exist.scada"]) == 2
    assert "CONFIG001" in capsys.readouterr().out


def test_lint_dimacs_file(tmp_path, capsys):
    path = tmp_path / "formula.cnf"
    path.write_text("p cnf 4 2\n1 -2 0\n1 2 0\n")
    assert main(["lint", str(path)]) == 0
    out = capsys.readouterr().out
    assert "CNF001" in out  # vars 3 and 4 unconstrained
    assert "CNF004" in out  # var 1 is pure


def test_lint_bad_dimacs_file(tmp_path, capsys):
    path = tmp_path / "broken.cnf"
    path.write_text("p cnf x y\n")
    assert main(["lint", str(path)]) == 2
    assert "CONFIG001" in capsys.readouterr().out


def test_lint_encoding_flag(good_cfg, capsys):
    assert main(["lint", good_cfg, "--encoding", "--k", "1"]) in (0, 1)
    out = capsys.readouterr().out
    assert "good" in out or "scada" in out


def test_verify_refuses_bad_config(bad_cfg, capsys):
    code = main(["verify", bad_cfg, "--k", "1"])
    err = capsys.readouterr().err
    assert code == 2
    assert "SCADA001" in err
    assert "--no-lint" in err


def test_verify_no_lint_overrides(bad_cfg, capsys):
    code = main(["verify", bad_cfg, "--k", "1", "--no-lint"])
    capsys.readouterr()
    assert code in (0, 1)


def test_verify_preprocess_matches_plain(good_cfg, capsys):
    plain = main(["verify", good_cfg, "--k", "1"])
    capsys.readouterr()
    pre = main(["verify", good_cfg, "--k", "1", "--preprocess"])
    capsys.readouterr()
    assert plain == pre
