"""Layer-2a encoding analysis (CNF001-004)."""

from repro.lint import analyze_cnf
from repro.sat import CNF


def _codes(report):
    return {d.code for d in report.diagnostics}


def test_clean_two_sided_cnf_is_clean():
    cnf = CNF(clauses=[[1, 2], [-1, -2], [1, -2], [-1, 2]])
    report = analyze_cnf(cnf, frozen=())
    assert report.diagnostics == []


def test_cnf001_unconstrained_variables():
    cnf = CNF(num_vars=5)
    cnf.add_clause([1, -2])
    cnf.add_clause([2, -1])
    report = analyze_cnf(cnf)
    hits = [d for d in report.diagnostics if d.code == "CNF001"]
    assert hits and "3 of 5" in hits[0].message


def test_cnf002_dropped_tautologies_reported():
    cnf = CNF()
    cnf.add_clause([1, -1])
    cnf.add_clause([1, 2])
    assert cnf.tautologies_dropped == 1
    assert "CNF002" in _codes(analyze_cnf(cnf))


def test_cnf003_duplicate_clauses():
    cnf = CNF(clauses=[[1, 2], [1, 2], [-1, -2], [-2, -1]])
    # normalize_clause sorts, so [-1,-2] and [-2,-1] are duplicates too
    hits = [d for d in analyze_cnf(cnf).diagnostics if d.code == "CNF003"]
    assert hits and "2 clauses" in hits[0].message


def test_cnf004_pure_literals_respect_frozen():
    cnf = CNF(clauses=[[1, 2], [1, -2], [3, 2], [3, -2]])
    # vars 1 and 3 are pure; 2 is two-sided
    report = analyze_cnf(cnf)
    [hit] = [d for d in report.diagnostics if d.code == "CNF004"]
    assert "2 non-frozen" in hit.message
    report = analyze_cnf(cnf, frozen=[1, 3])
    assert "CNF004" not in _codes(report)


def test_empty_cnf_reports_nothing():
    assert analyze_cnf(CNF()).diagnostics == []


def test_subject_is_propagated():
    assert analyze_cnf(CNF(), subject="enc").subject == "enc"


def test_analyzer_export_has_no_error_findings(tiny_network, tiny_problem):
    """The Tseitin encoding of a real model analyzes without errors."""
    from repro.core import ResiliencySpec, ScadaAnalyzer

    analyzer = ScadaAnalyzer(tiny_network, tiny_problem, lint=False)
    cnf, frozen = analyzer.export_cnf(ResiliencySpec.observability(k=1))
    report = analyze_cnf(cnf, frozen=frozen)
    assert not report.has_errors
