"""Layer-1 configuration rules: each SCADA code on a crafted defect."""

import pytest

from repro.cases import case_problem, fig3_network, fig4_network
from repro.core import ObservabilityProblem, ResiliencySpec
from repro.lint import Severity, lint_case
from repro.scada import CryptoProfile, Device, DeviceType, Link, ScadaNetwork


def _net(devices, links, mmap, **kwargs):
    kwargs.setdefault("strict", False)
    return ScadaNetwork(devices=devices, links=links,
                        measurement_map=mmap, **kwargs)


def _chain():
    """IED 1 — RTU 2 — MTU 3."""
    return ([Device(1, DeviceType.IED), Device(2, DeviceType.RTU),
             Device(3, DeviceType.MTU)],
            [Link(1, 1, 2), Link(2, 2, 3)])


def _problem(num_states=1, state_sets=None):
    return ObservabilityProblem(
        num_states=num_states,
        state_sets=state_sets if state_sets is not None else {1: [1]},
        unique_groups=[])


def _codes(report):
    return {d.code for d in report.diagnostics}


def test_scada001_dangling_measurement_map():
    devices, links = _chain()
    report = lint_case(_net(devices, links, {1: [1], 99: [2]}))
    assert "SCADA001" in _codes(report)
    assert report.has_errors
    [diag] = [d for d in report.diagnostics if d.code == "SCADA001"]
    assert diag.location == "device 99"


def test_scada002_measurement_on_non_ied():
    devices, links = _chain()
    report = lint_case(_net(devices, links, {2: [1]}))
    assert "SCADA002" in _codes(report)


def test_scada003_measurement_on_two_ieds():
    devices, links = _chain()
    devices.insert(1, Device(4, DeviceType.IED))
    links.append(Link(3, 4, 2))
    report = lint_case(_net(devices, links, {1: [1], 4: [1]}))
    assert "SCADA003" in _codes(report)


def test_scada004_duplicate_device_definition():
    devices, links = _chain()
    devices.append(Device(1, DeviceType.RTU))
    report = lint_case(_net(devices, links, {1: [1]}))
    assert "SCADA004" in _codes(report)


def test_scada005_no_mtu():
    report = lint_case(_net(
        [Device(1, DeviceType.IED), Device(2, DeviceType.RTU)],
        [Link(1, 1, 2)], {1: [1]}))
    assert "SCADA005" in _codes(report)


def test_scada006_security_pair_unknown_device():
    devices, links = _chain()
    report = lint_case(_net(
        devices, links, {1: [1]},
        pair_security={(1, 99): CryptoProfile.parse_many("hmac 256")}))
    assert "SCADA006" in _codes(report)


def test_scada007_unreachable_field_device():
    devices, links = _chain()
    devices.append(Device(4, DeviceType.IED))  # no link anywhere
    report = lint_case(_net(devices, links, {1: [1]}))
    assert "SCADA007" in _codes(report)


def test_scada008_no_assured_path():
    devices, links = _chain()
    devices[0] = Device(1, DeviceType.IED,
                        protocols=frozenset({"modbus"}))  # RTU talks dnp3
    report = lint_case(_net(devices, links, {1: [1]}))
    assert "SCADA008" in _codes(report)


def test_scada009_no_secured_path_is_warning_without_spec():
    # fig3's IEDs 1 and 4 only pair "hmac 128" with their RTU:
    # authenticated but not integrity protected (§III-D).
    report = lint_case(fig3_network(), case_problem())
    hits = [d for d in report.diagnostics if d.code == "SCADA009"]
    assert {d.location for d in hits} == {"device 1", "device 4"}
    assert all(d.severity is Severity.WARNING for d in hits)
    assert not report.has_errors


def test_scada009_upgraded_to_error_for_secured_spec():
    spec = ResiliencySpec.secured_observability(k=1)
    report = lint_case(fig3_network(), case_problem(), spec)
    hits = [d for d in report.diagnostics if d.code == "SCADA009"]
    assert hits and all(d.severity is Severity.ERROR for d in hits)


def test_scada010_uncovered_state():
    devices, links = _chain()
    report = lint_case(_net(devices, links, {1: [1]}),
                       _problem(num_states=2, state_sets={1: [1]}))
    assert "SCADA010" in _codes(report)


def test_scada010_counts_only_existing_ieds():
    # The only measurement covering the state is mapped to a missing
    # device, so the state is statically unobservable too.
    devices, links = _chain()
    report = lint_case(_net(devices, links, {99: [1]}), _problem())
    codes = _codes(report)
    assert "SCADA001" in codes and "SCADA010" in codes


def test_scada011_mapped_measurement_unknown_to_problem():
    devices, links = _chain()
    report = lint_case(_net(devices, links, {1: [1, 7]}), _problem())
    assert "SCADA011" in _codes(report)


def test_scada012_problem_measurement_unmapped():
    devices, links = _chain()
    report = lint_case(
        _net(devices, links, {1: [1]}),
        _problem(state_sets={1: [1], 2: [1]}))
    assert "SCADA012" in _codes(report)


def test_scada013_redundancy_below_budget():
    devices, links = _chain()
    spec = ResiliencySpec.observability(k=1)
    report = lint_case(_net(devices, links, {1: [1]}), _problem(), spec)
    hits = [d for d in report.diagnostics if d.code == "SCADA013"]
    assert hits and hits[0].severity is Severity.ERROR
    # The single chain is cut by one device failure.
    assert "1 device-disjoint" in hits[0].message


def test_scada013_silent_when_redundancy_sufficient():
    spec = ResiliencySpec.observability(k=1)
    report = lint_case(fig3_network(), case_problem(), spec)
    assert "SCADA013" not in _codes(report)


def test_scada014_coverage_below_bad_data_budget():
    devices, links = _chain()
    spec = ResiliencySpec.bad_data_detectability(k=1, r=1)
    report = lint_case(_net(devices, links, {1: [1]}), _problem(), spec)
    assert "SCADA014" in _codes(report)


def test_scada015_broken_algorithm():
    devices, links = _chain()
    report = lint_case(_net(
        devices, links, {1: [1]},
        pair_security={(1, 2): CryptoProfile.parse_many("des 56")}))
    hits = [d for d in report.diagnostics if d.code == "SCADA015"]
    assert hits and "des" in hits[0].message


def test_scada016_too_few_unique_groups():
    devices, links = _chain()
    problem = ObservabilityProblem(
        num_states=2, state_sets={1: [1, 2], 2: [1, 2]},
        unique_groups=[[1, 2]])
    report = lint_case(_net(devices, links, {1: [1, 2]}), problem)
    assert "SCADA016" in _codes(report)


def test_scada017_link_to_unknown_device():
    devices, links = _chain()
    links.append(Link(3, 2, 42))
    report = lint_case(_net(devices, links, {1: [1]}))
    assert "SCADA017" in _codes(report)


def test_scada018_parallel_link():
    devices, links = _chain()
    links.append(Link(3, 2, 1))
    report = lint_case(_net(devices, links, {1: [1]}))
    hits = [d for d in report.diagnostics if d.code == "SCADA018"]
    assert hits and all(d.severity is Severity.WARNING for d in hits)


def test_case_study_networks_pass_lint():
    """The paper's §IV configurations carry no error-level findings."""
    problem = case_problem()
    for network in (fig3_network(), fig4_network()):
        report = lint_case(network, problem)
        assert not report.has_errors, report.to_text()


def test_report_subject_is_network_name():
    devices, links = _chain()
    net = _net(devices, links, {1: [1]}, name="unit-net")
    assert lint_case(net).subject == "unit-net"


def test_scada019_group_silenceable_within_budget():
    devices, links = _chain()
    spec = ResiliencySpec.observability(k=1)
    report = lint_case(_net(devices, links, {1: [1]}), _problem(), spec)
    hits = [d for d in report.diagnostics if d.code == "SCADA019"]
    assert hits and hits[0].severity is Severity.WARNING
    assert "security index 1" in hits[0].message


def test_scada019_silent_when_indices_exceed_the_budget():
    spec = ResiliencySpec.observability(k=0)
    report = lint_case(fig3_network(), case_problem(), spec)
    assert "SCADA019" not in _codes(report)


def test_scada019_needs_a_spec():
    devices, links = _chain()
    report = lint_case(_net(devices, links, {1: [1]}), _problem())
    assert "SCADA019" not in _codes(report)


def test_scada020_secured_index_within_budget():
    devices, links = _chain()
    strong = CryptoProfile.parse_many("rsa 2048 aes 256")
    spec = ResiliencySpec.secured_observability(k=1)
    report = lint_case(
        _net(devices, links, {1: [1]},
             pair_security={(1, 2): strong, (2, 3): strong}),
        _problem(), spec)
    codes = _codes(report)
    assert "SCADA020" in codes
    assert "SCADA019" in codes  # the assured index is no larger


def test_scada020_only_for_security_properties():
    devices, links = _chain()
    strong = CryptoProfile.parse_many("rsa 2048 aes 256")
    spec = ResiliencySpec.observability(k=1)
    report = lint_case(
        _net(devices, links, {1: [1]},
             pair_security={(1, 2): strong, (2, 3): strong}),
        _problem(), spec)
    assert "SCADA020" not in _codes(report)
