"""The structured-diagnostic core shared by both lint layers."""

import json

import pytest

from repro.lint import RULES, Diagnostic, LintReport, Severity


def test_severity_ranks_order():
    assert Severity.ERROR.rank < Severity.WARNING.rank < Severity.INFO.rank


def test_unregistered_code_rejected():
    with pytest.raises(ValueError):
        Diagnostic("SCADA999", Severity.ERROR, "nope")


def test_every_rule_code_has_a_title():
    for code, title in RULES.items():
        assert title
        diag = Diagnostic(code, Severity.INFO, "x")
        assert diag.title == title


def test_format_includes_code_location_and_hint():
    diag = Diagnostic("SCADA001", Severity.ERROR, "dangling map",
                      location="device 99", hint="declare the IED")
    text = diag.format()
    assert "error[SCADA001]" in text
    assert "at device 99" in text
    assert "hint: declare the IED" in text


def test_format_without_location_or_hint():
    text = Diagnostic("SCADA005", Severity.ERROR, "no MTU").format()
    assert text == "error[SCADA005]: no MTU"


def test_report_sorted_by_severity_then_code():
    report = LintReport(subject="t")
    report.append(Diagnostic("CNF004", Severity.INFO, "i"))
    report.append(Diagnostic("SCADA012", Severity.WARNING, "w"))
    report.append(Diagnostic("SCADA010", Severity.ERROR, "e2"))
    report.append(Diagnostic("SCADA001", Severity.ERROR, "e1"))
    codes = [d.code for d in report.sorted()]
    assert codes == ["SCADA001", "SCADA010", "SCADA012", "CNF004"]


def test_exit_code_and_has_errors():
    report = LintReport()
    assert report.exit_code() == 0 and not report.has_errors
    report.append(Diagnostic("SCADA011", Severity.WARNING, "w"))
    assert report.exit_code() == 0
    report.append(Diagnostic("SCADA001", Severity.ERROR, "e"))
    assert report.exit_code() == 1 and report.has_errors
    assert len(report.errors) == 1 and len(report.warnings) == 1


def test_summary_counts():
    report = LintReport(subject="net")
    assert report.summary() == "net: clean"
    report.append(Diagnostic("SCADA001", Severity.ERROR, "e"))
    report.append(Diagnostic("SCADA011", Severity.WARNING, "w"))
    report.append(Diagnostic("SCADA012", Severity.WARNING, "w"))
    assert report.summary() == "net: 1 error, 2 warnings"


def test_to_text_min_severity_filters():
    report = LintReport()
    report.append(Diagnostic("SCADA001", Severity.ERROR, "e"))
    report.append(Diagnostic("CNF001", Severity.INFO, "i"))
    text = report.to_text(min_severity=Severity.ERROR)
    assert "SCADA001" in text and "CNF001" not in text
    assert "CNF001" in report.to_text()


def test_to_json_payload():
    report = LintReport(subject="net")
    report.append(Diagnostic("SCADA001", Severity.ERROR, "dangling",
                             location="device 99"))
    payload = json.loads(report.to_json())
    assert payload["subject"] == "net"
    assert payload["exit_code"] == 1
    assert payload["counts"]["error"] == 1
    [diag] = payload["diagnostics"]
    assert diag["code"] == "SCADA001"
    assert diag["severity"] == "error"
    assert diag["location"] == "device 99"
