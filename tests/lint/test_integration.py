"""Analyzer/solver integration of the lint subsystem."""

import pytest

from repro.core import (
    ConfigurationLintError,
    ObservabilityProblem,
    ResiliencySpec,
    ScadaAnalyzer,
    Status,
)
from repro.scada import Device, DeviceType, Link, ScadaNetwork
from repro.smt.solver import Result, Solver
from repro.smt.terms import BoolVar, Not, Or


def _bad_network():
    devices = [Device(1, DeviceType.IED), Device(2, DeviceType.RTU),
               Device(3, DeviceType.MTU)]
    links = [Link(1, 1, 2), Link(2, 2, 3)]
    return ScadaNetwork(devices=devices, links=links,
                        measurement_map={1: [1], 99: [2]}, strict=False)


def _problem():
    return ObservabilityProblem(num_states=2,
                                state_sets={1: [1], 2: [2]},
                                unique_groups=[])


def test_analyzer_refuses_error_configs():
    with pytest.raises(ConfigurationLintError) as excinfo:
        ScadaAnalyzer(_bad_network(), _problem())
    assert "SCADA001" in str(excinfo.value)
    assert excinfo.value.report.has_errors


def test_analyzer_lint_false_overrides():
    analyzer = ScadaAnalyzer(_bad_network(), _problem(), lint=False)
    result = analyzer.verify(ResiliencySpec.observability(k=1))
    assert result.status in (Status.RESILIENT, Status.THREAT_FOUND)


def test_analyzer_preprocess_matches_baseline(tiny_network, tiny_problem):
    for spec in (ResiliencySpec.observability(k=1),
                 ResiliencySpec.secured_observability(k=1)):
        base = ScadaAnalyzer(tiny_network, tiny_problem,
                             lint=False).verify(spec)
        pre = ScadaAnalyzer(tiny_network, tiny_problem, lint=False,
                            preprocess=True).verify(spec)
        assert base.status == pre.status


def test_preprocess_enumeration_matches(tiny_network, tiny_problem):
    spec = ResiliencySpec.observability(k=2)
    base = ScadaAnalyzer(tiny_network, tiny_problem, lint=False)
    pre = ScadaAnalyzer(tiny_network, tiny_problem, lint=False,
                        preprocess=True)
    vectors = lambda a: {t.failed_devices
                         for t in a.enumerate_threat_vectors(spec)}
    assert vectors(base) == vectors(pre)


def test_preprocess_certified_proof(tiny_network, tiny_problem):
    analyzer = ScadaAnalyzer(tiny_network, tiny_problem, lint=False,
                             preprocess=True)
    result = analyzer.verify(ResiliencySpec.observability(k=0),
                             certify=True)
    if result.status is Status.RESILIENT:
        assert result.details["proof_checked"] is True


def test_solver_facade_preprocess_sat_and_model():
    solver = Solver(preprocess=True)
    a, b, c = BoolVar("a"), BoolVar("b"), BoolVar("c")
    solver.add(Or(a, b))
    solver.add(Or(Not(a), c))
    assert solver.check() is Result.SAT
    model = solver.model()
    assert (model.value(a) or model.value(b))
    assert (not model.value(a)) or model.value(c)


def test_solver_facade_preprocess_unsat_core():
    solver = Solver(preprocess=True)
    a, b = BoolVar("a"), BoolVar("b")
    solver.add(Or(a, b))
    solver.add(Not(b))
    assert solver.check(Not(a)) is Result.UNSAT
    core = solver.unsat_core()
    assert core  # the Not(a) assumption must appear
    assert solver.check(a) is Result.SAT


def test_solver_facade_preprocess_statistics():
    solver = Solver(preprocess=True)
    a, b = BoolVar("a"), BoolVar("b")
    solver.add(Or(a, b))
    solver.check()
    stats = solver.statistics.as_dict()
    assert stats["checks"] == 1
    assert "simplified_clauses" in stats
    assert stats["preprocess_time"] >= 0.0


def test_solver_facade_preprocess_push_pop():
    solver = Solver(preprocess=True)
    a = BoolVar("a")
    solver.add(a)
    solver.push()
    solver.add(Not(a))
    assert solver.check() is Result.UNSAT
    solver.pop()
    assert solver.check() is Result.SAT
    assert solver.model().value(a)
