"""Cross-module integration tests.

These exercise complete user journeys: config files through the
analyzer, verdict consistency with the state estimator, and the
agreement between verification, enumeration, and maximal-resiliency
search on the same system.
"""

import numpy as np
import pytest

from repro.analysis import max_total_resiliency, threat_space
from repro.core import (
    ObservabilityProblem,
    Property,
    ResiliencySpec,
    ScadaAnalyzer,
    Status,
)
from repro.grid import DcStateEstimator, UnobservableError, ieee14
from repro.scada import (
    CaseConfig,
    GeneratorConfig,
    dump_config,
    generate_scada,
    parse_config,
)


@pytest.fixture(scope="module")
def system():
    synthetic = generate_scada(
        ieee14(),
        GeneratorConfig(measurement_fraction=0.8, dual_home_fraction=0.3,
                        seed=2))
    problem = ObservabilityProblem.from_table(synthetic.table)
    return synthetic, ScadaAnalyzer(synthetic.network, problem)


def test_config_roundtrip_preserves_verdicts(system):
    synthetic, analyzer = system
    problem = analyzer.problem
    text = dump_config(CaseConfig(synthetic.network, problem, None),
                       rows=synthetic.table.rows)
    reparsed = parse_config(text)
    analyzer2 = ScadaAnalyzer(reparsed.network, reparsed.problem)
    for k in (0, 1, 2):
        spec = ResiliencySpec.observability(k=k)
        assert analyzer.verify(spec).status == \
            analyzer2.verify(spec).status, k


def test_threat_vector_breaks_the_estimator(system):
    synthetic, analyzer = system
    k = max_total_resiliency(analyzer)
    result = analyzer.verify(ResiliencySpec.observability(k=k + 1))
    assert result.status is Status.THREAT_FOUND
    estimator = DcStateEstimator(synthetic.table)
    angles = np.zeros(14)
    delivered = analyzer.reference.delivered_measurements(
        result.threat.failed_devices)
    readings = estimator.measure(angles, indices=sorted(delivered))
    # The paper's criterion is necessary for rank observability, so the
    # estimator must fail (or the criterion caught a count violation
    # that rank estimation survives — never the other way around for
    # coverage violations).
    if result.threat.uncovered_states:
        with pytest.raises(UnobservableError):
            estimator.estimate(readings)


def test_within_certificate_estimation_always_works(system):
    synthetic, analyzer = system
    k = max_total_resiliency(analyzer)
    estimator = DcStateEstimator(synthetic.table)
    rng = np.random.default_rng(0)
    angles = rng.normal(0, 0.1, 14)
    angles[0] = 0.0
    field = analyzer.network.field_device_ids
    for _ in range(20):
        failed = set(rng.choice(field, size=k, replace=False)) if k else set()
        delivered = analyzer.reference.delivered_measurements(failed)
        # The certificate says the paper's criterion holds; when it
        # holds AND the rank condition holds, estimation must succeed.
        readings = estimator.measure(angles, indices=sorted(delivered))
        try:
            result = estimator.estimate(readings)
            np.testing.assert_allclose(result.angles, angles, atol=1e-6)
        except UnobservableError:
            # Permitted only if the counting criterion is optimistic;
            # the analyzer's own predicate must still hold.
            assert analyzer.reference.observable(failed)


def test_enumeration_count_consistent_with_verify(system):
    _, analyzer = system
    k = max_total_resiliency(analyzer)
    resilient_spec = ResiliencySpec.observability(k=k)
    broken_spec = ResiliencySpec.observability(k=k + 1)
    assert threat_space(analyzer, resilient_spec).size == 0
    assert threat_space(analyzer, broken_spec, limit=50).size > 0


def test_certified_verdicts_match_uncertified(system):
    _, analyzer = system
    for k in (0, 1):
        spec = ResiliencySpec.secured_observability(k=k)
        plain = analyzer.verify(spec)
        certified = analyzer.verify(spec, certify=True)
        assert plain.status == certified.status
        if certified.is_resilient:
            assert certified.details["proof_checked"] is True


def test_encodings_agree_end_to_end(system):
    synthetic, _ = system
    problem = ObservabilityProblem.from_table(synthetic.table)
    for encoding in ("totalizer", "sequential"):
        analyzer = ScadaAnalyzer(synthetic.network, problem,
                                 card_encoding=encoding)
        result = analyzer.verify(ResiliencySpec.observability(k=1))
        if encoding == "totalizer":
            baseline = result.status
        else:
            assert result.status == baseline


def test_bad_data_spec_agrees_with_estimator_redundancy(system):
    """If (k=0, r=1)-BDD holds, every state has ≥2 secured measurements;
    the estimator's LNR detector then catches a single gross error among
    secured readings."""
    synthetic, analyzer = system
    spec = ResiliencySpec.bad_data_detectability(r=1, k=0)
    result = analyzer.verify(spec)
    secured = analyzer.reference.delivered_measurements([], secured=True)
    if result.is_resilient and secured:
        estimator = DcStateEstimator(synthetic.table, sigma=0.01)
        rng = np.random.default_rng(5)
        angles = rng.normal(0, 0.1, 14)
        angles[0] = 0.0
        readings = estimator.measure(angles, indices=sorted(secured))
        victim = sorted(readings)[0]
        readings[victim] += 1.0
        flagged = estimator.estimate(readings)
        assert not flagged.chi_square_passes
