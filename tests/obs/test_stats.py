"""Aggregating traces into ``repro stats`` summaries."""

import json

import pytest

from repro.obs.stats import TraceStats, aggregate
from repro.obs.tracer import Tracer


def _demo_tracer():
    tracer = Tracer(meta={"command": "verify"})
    with tracer.span("query", backend="fresh") as sp:
        with tracer.span("encode"):
            pass
        with tracer.span("solve"):
            pass
        sp.attrs["conflicts"] = 10
        sp.attrs["restarts"] = 2
        sp.attrs["decisions"] = 30
        sp.attrs["propagations"] = 400
    tracer.count("cache.hits", 3)
    tracer.count("cache.misses", 1)
    tracer.registry.observe("solver.lbd", 4)
    return tracer


def test_fold_one_trace():
    tracer = _demo_tracer()
    tracer.close()
    stats = TraceStats()
    stats.add_trace(tracer.records)
    assert stats.problems == []
    assert stats.queries == 1
    assert stats.conflicts == 10
    assert stats.restarts == 2
    assert stats.phases["encode"].count == 1
    assert stats.phases["solve"].count == 1
    assert stats.phases["extract"].count == 0
    assert stats.cache_hit_rate == pytest.approx(0.75)
    assert stats.metrics.histograms["solver.lbd"].count == 1


def test_sweep_task_events_attribute_workers():
    tracer = Tracer()
    with tracer.span("sweep", jobs=2, tasks=2):
        tracer.event("sweep.task", index=0, worker=11, dur=0.5, ok=True)
        tracer.event("sweep.task", index=1, worker=12, dur=0.25, ok=True)
        tracer.event("sweep.task", index=2, ok=False, error="ValueError")
    tracer.close()
    stats = TraceStats()
    stats.add_trace(tracer.records)
    assert stats.sweeps == 1
    assert stats.sweep_tasks == 3
    assert stats.sweep_failures == 1
    assert stats.worker_busy == {11: 0.5, 12: 0.25}
    util = stats.worker_utilization
    assert util is not None and 0.0 < util <= 1.0


def test_schema_problems_are_collected_not_raised():
    stats = TraceStats()
    stats.add_trace([{"type": "span", "name": "solve"}], source="bad")
    assert stats.problems
    assert all(p.startswith("bad:") for p in stats.problems)


def test_aggregate_multiple_files(tmp_path):
    paths = []
    for name in ("a.jsonl", "b.jsonl"):
        tracer = _demo_tracer()
        tracer.close()
        path = tmp_path / name
        path.write_text(
            "".join(json.dumps(r) + "\n" for r in tracer.records))
        paths.append(str(path))
    stats = aggregate(paths)
    assert stats.traces == 2
    assert stats.queries == 2
    assert stats.conflicts == 20
    assert stats.metrics.counters["cache.hits"] == 6


def test_empty_trace_renders_na_not_crash():
    # Regression: an empty-but-valid trace (no queries, no cache
    # lookups, no sweep busy-time) must render cleanly, with the
    # undefined rates shown as n/a rather than divided by zero or
    # silently omitted.
    tracer = Tracer(meta={"command": "verify"})
    tracer.close()
    stats = TraceStats()
    stats.add_trace(tracer.records)
    assert stats.cache_hit_rate is None
    assert stats.worker_utilization is None
    text = stats.to_text()
    assert "encoding cache: hit rate n/a" in text
    payload = stats.to_json()
    assert payload["cache"]["hit_rate"] is None
    assert payload["sweep"]["utilization"] is None


def test_zero_duration_sweep_renders_na_utilization():
    # A sweep span recorded with zero duration (clock granularity on a
    # fast machine) leaves utilization undefined; the sweep section
    # must still render, saying n/a.
    tracer = Tracer()
    tracer.event("sweep.task", index=0, worker=7, dur=0.0, ok=True)
    tracer.close()
    stats = TraceStats()
    stats.add_trace(tracer.records)
    assert stats.sweep_time == 0.0
    assert stats.worker_utilization is None
    assert "worker utilization: n/a" in stats.to_text()


def test_malformed_metrics_record_raises_value_error():
    # Regression: malformed snapshots (truncated writes) used to trip
    # bare asserts inside the metrics merge, and AssertionError is not
    # an error class the stats CLI catches.  They must surface as
    # ValueError like every other bad-trace problem.
    stats = TraceStats()
    with pytest.raises(ValueError):
        stats.metrics.merge({"counters": ["not", "a", "mapping"]})
    with pytest.raises(ValueError):
        stats.metrics.merge(
            {"histograms": {"solver.lbd": {"counts": "oops"}}})


def test_corpus_counters_render_as_their_own_section():
    tracer = Tracer()
    tracer.count("corpus.cells", 6)
    tracer.count("corpus.cells.skipped", 2)
    tracer.count("corpus.cells.screened", 1)
    tracer.count("corpus.cells.solved", 3)
    tracer.count("corpus.store.hits", 2)
    tracer.count("corpus.store.misses", 4)
    tracer.count("corpus.store.appends", 4)
    tracer.close()
    stats = TraceStats()
    stats.add_trace(tracer.records)
    text = stats.to_text()
    assert "corpus: 6 cell(s)" in text
    assert "2 resumed from store" in text
    payload = stats.to_json()
    assert payload["corpus"]["corpus.cells"] == 6


def test_renderings_cover_every_section():
    tracer = _demo_tracer()
    with tracer.span("sweep"):
        tracer.event("sweep.task", index=0, worker=7, dur=0.1, ok=True)
    tracer.close()
    stats = TraceStats()
    stats.add_trace(tracer.records)
    text = stats.to_text()
    assert "phase timings" in text
    assert "encoding cache" in text
    assert "worker utilization" in text
    assert "solver distributions" in text
    payload = json.loads(json.dumps(stats.to_json()))
    assert payload["queries"]["count"] == 1
    assert payload["cache"]["hit_rate"] == pytest.approx(0.75)
    assert payload["sweep"]["workers"] == 1
