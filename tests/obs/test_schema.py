"""Trace-schema validation and JSONL loading."""

import json

import pytest

from repro.obs.schema import (
    TRACE_VERSION,
    load_trace,
    validate_record,
    validate_trace,
)
from repro.obs.tracer import Tracer


def _valid_trace():
    tracer = Tracer(meta={"command": "verify"})
    with tracer.span("solve"):
        pass
    tracer.event("solver.restart", restarts=1)
    tracer.close()
    return tracer.records


def test_real_tracer_output_validates_clean():
    assert validate_trace(_valid_trace()) == []


def test_empty_trace_is_a_problem():
    assert validate_trace([])


def test_meta_must_come_first_and_metrics_last():
    records = _valid_trace()
    shuffled = records[1:] + records[:1]
    problems = validate_trace(shuffled)
    assert any("meta" in p for p in problems)
    no_metrics = [r for r in records if r["type"] != "metrics"]
    assert any("metrics" in p for p in validate_trace(no_metrics))


def test_unknown_record_type_is_flagged():
    problems = validate_record({"type": "bogus"}, 3)
    assert problems
    assert any("bogus" in p for p in problems)


def test_missing_required_fields_are_flagged():
    problems = validate_record({"type": "span", "name": "solve"}, 0)
    assert any("t" in p for p in problems)
    assert any("dur" in p for p in problems)


def test_field_type_mismatch_is_flagged():
    record = {"type": "span", "name": "solve", "t": "soon", "dur": 0.1,
              "attrs": {}}
    assert any("t" in p for p in validate_record(record, 0))


def test_newer_version_is_flagged():
    record = {"type": "meta", "version": TRACE_VERSION + 1,
              "pid": 1, "attrs": {}}
    assert any("version" in p for p in validate_record(record, 0))


def test_worker_field_must_be_int():
    record = {"type": "event", "name": "x", "t": 0.0, "attrs": {},
              "worker": "alice"}
    assert any("worker" in p for p in validate_record(record, 0))


def test_load_trace_roundtrip(tmp_path):
    path = tmp_path / "t.jsonl"
    records = _valid_trace()
    path.write_text("".join(json.dumps(r) + "\n" for r in records))
    loaded = load_trace(str(path))
    assert loaded == records
    assert validate_trace(loaded) == []


def test_load_trace_names_the_bad_line(tmp_path):
    path = tmp_path / "t.jsonl"
    path.write_text('{"type": "meta"}\nnot json\n')
    with pytest.raises(ValueError, match=r":2: malformed JSON"):
        load_trace(str(path))
