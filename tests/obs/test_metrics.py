"""Counters, gauges, and fixed-bucket histograms."""

import pytest

from repro.obs.metrics import DEFAULT_BUCKETS, Histogram, MetricsRegistry


def test_histogram_mean_and_extremes():
    hist = Histogram()
    for value in (1, 2, 3, 10):
        hist.observe(value)
    assert hist.count == 4
    assert hist.mean == pytest.approx(4.0)
    assert hist.low == 1
    assert hist.high == 10


def test_histogram_buckets_are_inclusive_upper_bounds():
    hist = Histogram(bounds=(1, 2, 4))
    for value in (1, 2, 2, 3, 4, 100):
        hist.observe(value)
    # counts: <=1, <=2, <=4, overflow
    assert hist.counts == [1, 2, 2, 1]


def test_histogram_quantile_reports_bucket_bound():
    hist = Histogram(bounds=(1, 2, 4))
    for value in (1, 1, 1, 4):
        hist.observe(value)
    assert hist.quantile(0.5) == 1.0
    assert hist.quantile(1.0) == 4.0
    with pytest.raises(ValueError):
        hist.quantile(1.5)


def test_histogram_quantile_overflow_reports_max():
    hist = Histogram(bounds=(1,))
    hist.observe(50)
    assert hist.quantile(0.9) == 50.0


def test_histogram_merge_adds_counts():
    a, b = Histogram(), Histogram()
    for value in (1, 2):
        a.observe(value)
    for value in (3, 40):
        b.observe(value)
    a.merge(b.snapshot())
    assert a.count == 4
    assert a.total == pytest.approx(46.0)
    assert a.low == 1
    assert a.high == 40


def test_histogram_merge_rejects_different_bounds():
    a = Histogram(bounds=(1, 2))
    b = Histogram(bounds=(1, 2, 3))
    with pytest.raises(ValueError):
        a.merge(b.snapshot())


def test_histogram_rejects_unsorted_bounds():
    with pytest.raises(ValueError):
        Histogram(bounds=(3, 1))


def test_registry_counter_and_gauge():
    reg = MetricsRegistry()
    reg.count("queries")
    reg.count("queries", 2)
    reg.gauge("depth", 7)
    snap = reg.snapshot()
    assert snap["counters"] == {"queries": 3}
    assert snap["gauges"] == {"depth": 7.0}


def test_registry_merge_semantics():
    parent, worker = MetricsRegistry(), MetricsRegistry()
    parent.count("queries", 2)
    parent.gauge("depth", 1.0)
    parent.observe("lbd", 3)
    worker.count("queries", 5)
    worker.gauge("depth", 9.0)
    worker.observe("lbd", 5)
    worker.observe("size", 2)
    parent.merge(worker.snapshot())
    # Counters add, gauges take the merged-in value, histograms fold.
    assert parent.counters["queries"] == 7
    assert parent.gauges["depth"] == 9.0
    assert parent.histograms["lbd"].count == 2
    assert parent.histograms["size"].count == 1


def test_snapshot_is_json_shaped():
    import json

    reg = MetricsRegistry()
    reg.observe("lbd", 3, bounds=DEFAULT_BUCKETS)
    reg.count("hits")
    assert json.loads(json.dumps(reg.snapshot()))["counters"] == {"hits": 1}
