"""The tracer: spans, events, absorption, and the active-tracer API."""

import io
import json

from repro.obs.tracer import (
    SolverProbe,
    Tracer,
    activate,
    count,
    current_tracer,
    event,
    probe_for,
    set_tracer,
    span,
    thread_activate,
)


def _names(tracer, kind):
    return [r["name"] for r in tracer.records if r["type"] == kind]


def test_meta_header_is_first_record():
    tracer = Tracer(meta={"command": "verify"})
    assert tracer.records[0]["type"] == "meta"
    assert tracer.records[0]["attrs"] == {"command": "verify"}


def test_span_records_duration_and_attrs():
    tracer = Tracer()
    with tracer.span("solve", backend="fresh") as sp:
        sp.attrs["result"] = "unsat"
    record = tracer.records[-1]
    assert record["type"] == "span"
    assert record["name"] == "solve"
    assert record["dur"] >= 0.0
    assert record["attrs"] == {"backend": "fresh", "result": "unsat"}


def test_span_notes_escaping_exception():
    tracer = Tracer()
    try:
        with tracer.span("solve"):
            raise ValueError("boom")
    except ValueError:
        pass
    assert tracer.records[-1]["attrs"]["error"] == "ValueError"


def test_sink_receives_jsonl_as_records_are_made():
    sink = io.StringIO()
    tracer = Tracer(sink)
    tracer.event("solver.restart", restarts=1)
    tracer.close()
    lines = [json.loads(line) for line in
             sink.getvalue().strip().splitlines()]
    assert [r["type"] for r in lines] == ["meta", "event", "metrics"]


def test_close_is_idempotent_and_stops_recording():
    tracer = Tracer()
    tracer.close()
    tracer.close()
    tracer.event("late")
    assert [r["type"] for r in tracer.records] == ["meta", "metrics"]


def test_solver_event_cap_counts_overflow():
    tracer = Tracer()
    tracer._solver_event_budget = 2
    for _ in range(5):
        tracer.event("solver.restart")
    assert _names(tracer, "event").count("solver.restart") == 2
    assert tracer.registry.counters["solver.events_dropped"] == 3


def test_absorb_tags_worker_and_drops_meta_and_metrics():
    worker = Tracer()
    with worker.span("solve"):
        pass
    worker.count("cache.hits", 2)
    worker.close()
    parent = Tracer()
    parent.absorb(worker.export(), worker=4242)
    kinds = [r["type"] for r in parent.records]
    # Exactly one meta (the parent's), no replayed metrics record.
    assert kinds.count("meta") == 1
    assert kinds.count("metrics") == 0
    replayed = parent.records[-1]
    assert replayed["name"] == "solve"
    assert replayed["worker"] == 4242
    assert parent.registry.counters["cache.hits"] == 2


def test_activate_scopes_the_process_tracer():
    assert current_tracer() is None
    tracer = Tracer()
    with activate(tracer):
        assert current_tracer() is tracer
        inner = Tracer()
        with activate(inner):
            assert current_tracer() is inner
        assert current_tracer() is tracer
    assert current_tracer() is None


def test_module_helpers_are_noops_when_off():
    assert current_tracer() is None
    # None of these may raise or record anywhere.
    with span("solve") as sp:
        sp.attrs["result"] = "unsat"
    event("solver.restart")
    count("cache.hits")


def test_module_helpers_hit_the_active_tracer():
    tracer = Tracer()
    previous = set_tracer(tracer)
    try:
        with span("encode", backend="fresh"):
            pass
        event("sweep.task", index=0)
        count("cache.misses")
    finally:
        set_tracer(previous)
    assert _names(tracer, "span") == ["encode"]
    assert _names(tracer, "event") == ["sweep.task"]
    assert tracer.registry.counters["cache.misses"] == 1


def test_probe_for_none_is_none():
    assert probe_for(None) is None
    tracer = Tracer()
    assert isinstance(probe_for(tracer), SolverProbe)


def test_solver_probe_feeds_histograms_and_events():
    tracer = Tracer()
    probe = SolverProbe(tracer)
    probe.on_learned(lbd=3, size=5, level=7)
    probe.on_learned(lbd=2, size=2, level=4)
    probe.on_restart(restarts=1, conflicts=100)
    probe.on_reduce_db(before=50, after=25, conflicts=200)
    probe.on_rescale()
    assert tracer.registry.histograms["solver.lbd"].count == 2
    assert tracer.registry.histograms["solver.conflict_depth"].count == 2
    assert tracer.registry.counters["solver.restarts"] == 1
    assert tracer.registry.counters["solver.db_reductions"] == 1
    assert tracer.registry.counters["solver.activity_rescales"] == 1
    assert _names(tracer, "event") == ["solver.restart", "solver.reduce_db"]


def test_hooks_fire_during_a_real_search():
    from repro.sat import SatSolver

    # Pigeonhole: 5 pigeons, 4 holes — unsat with real conflicts.
    holes = 4
    solver = SatSolver()
    var = {}
    nxt = 0
    for p in range(holes + 1):
        for h in range(holes):
            nxt += 1
            var[p, h] = nxt
    for p in range(holes + 1):
        solver.add_clause([var[p, h] for h in range(holes)])
    for h in range(holes):
        for p1 in range(holes + 1):
            for p2 in range(p1 + 1, holes + 1):
                solver.add_clause([-var[p1, h], -var[p2, h]])
    tracer = Tracer()
    solver.hooks = probe_for(tracer)
    assert solver.solve() is False
    lbd = tracer.registry.histograms.get("solver.lbd")
    assert lbd is not None and lbd.count > 0
    depth = tracer.registry.histograms["solver.conflict_depth"]
    assert depth.count == lbd.count


def test_thread_activate_overrides_process_tracer():
    shared = Tracer()
    mine = Tracer()
    set_tracer(shared)
    try:
        assert current_tracer() is shared
        with thread_activate(mine):
            assert current_tracer() is mine
            count("local.events")
        assert current_tracer() is shared
        assert mine.registry.counters["local.events"] == 1
        assert "local.events" not in shared.registry.counters
    finally:
        set_tracer(None)


def test_thread_activate_none_silences_a_thread():
    shared = Tracer()
    set_tracer(shared)
    try:
        with thread_activate(None):
            assert current_tracer() is None
            count("dropped")  # no tracer: must be a no-op, not a crash
        assert "dropped" not in shared.registry.counters
    finally:
        set_tracer(None)


def test_thread_activate_isolates_concurrent_threads():
    import threading

    shared = Tracer()
    set_tracer(shared)
    tracers = [Tracer() for _ in range(3)]
    ready = threading.Barrier(3)

    def work(idx):
        with thread_activate(tracers[idx]):
            ready.wait(timeout=5)
            for _ in range(idx + 1):
                count("per.thread")

    try:
        threads = [threading.Thread(target=work, args=(i,))
                   for i in range(3)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=10)
        for idx, tracer in enumerate(tracers):
            assert tracer.registry.counters["per.thread"] == idx + 1
        assert "per.thread" not in shared.registry.counters
    finally:
        set_tracer(None)
