"""Per-task telemetry threading through SweepExecutor's process pool."""

from repro.engine import SweepExecutor
from repro.obs.tracer import Tracer, activate
from repro.obs.tracer import span as obs_span


def _traced_square(x):
    # Worker-side instrumentation: the telemetry boundary activates a
    # fresh tracer in the worker, so this span must come home.
    with obs_span("solve", task=x):
        return x * x


def _raise_on_two(x):
    if x == 2:
        raise ValueError(f"bad task {x}")
    return x * x


def _events(tracer, name):
    return [r for r in tracer.records
            if r["type"] == "event" and r["name"] == name]


def test_inline_map_emits_task_events():
    executor = SweepExecutor(jobs=1)
    tracer = Tracer()
    with activate(tracer):
        results = executor.map(_traced_square, [1, 2, 3])
    assert results == [1, 4, 9]
    events = _events(tracer, "sweep.task")
    assert [e["attrs"]["index"] for e in events] == [0, 1, 2]
    assert all(e["attrs"]["ok"] for e in events)
    assert len(executor.last_telemetry) == 3
    # The sweep span wraps the whole map call.
    sweeps = [r for r in tracer.records
              if r["type"] == "span" and r["name"] == "sweep"]
    assert len(sweeps) == 1
    assert sweeps[0]["attrs"]["tasks"] == 3
    assert sweeps[0]["attrs"]["failures"] == 0
    # Inline worker spans recorded directly (no worker replay needed).
    solves = [r for r in tracer.records
              if r["type"] == "span" and r["name"] == "solve"]
    assert len(solves) == 3


def test_pool_map_attributes_workers_and_absorbs_spans():
    executor = SweepExecutor(jobs=2)
    tracer = Tracer()
    with activate(tracer):
        results = executor.map(_traced_square, [1, 2, 3, 4])
    assert results == [1, 4, 9, 16]
    events = _events(tracer, "sweep.task")
    assert sorted(e["attrs"]["index"] for e in events) == [0, 1, 2, 3]
    workers = {e["attrs"]["worker"] for e in events}
    assert workers and all(isinstance(w, int) for w in workers)
    assert all(e["attrs"]["dur"] >= 0.0 for e in events)
    # The in-worker spans were replayed into the parent trace, each
    # tagged with the pid of the worker that produced it.
    solves = [r for r in tracer.records
              if r["type"] == "span" and r["name"] == "solve"]
    assert len(solves) == 4
    assert {s["worker"] for s in solves} <= workers
    assert {s["attrs"]["task"] for s in solves} == {1, 2, 3, 4}
    assert len(executor.last_telemetry) == 4


def test_pool_map_without_tracer_ships_plain_values():
    executor = SweepExecutor(jobs=2)
    assert executor.map(_traced_square, [1, 2, 3]) == [1, 4, 9]
    assert executor.last_telemetry == []


def test_failed_tasks_are_marked_in_telemetry():
    executor = SweepExecutor(jobs=2)
    tracer = Tracer()
    with activate(tracer):
        results = executor.map(_raise_on_two, [1, 2, 3],
                               on_error="return")
    assert results[0] == 1 and results[2] == 9
    events = _events(tracer, "sweep.task")
    failed = [e for e in events if not e["attrs"]["ok"]]
    assert len(failed) == 1
    assert failed[0]["attrs"]["index"] == 1
    assert failed[0]["attrs"]["error"] == "ValueError"
    sweeps = [r for r in tracer.records
              if r["type"] == "span" and r["name"] == "sweep"]
    assert sweeps[0]["attrs"]["failures"] == 1


def test_merged_trace_still_validates(tmp_path):
    from repro.obs.schema import validate_trace

    executor = SweepExecutor(jobs=2)
    tracer = Tracer()
    with activate(tracer):
        executor.map(_traced_square, [1, 2, 3, 4])
    tracer.close()
    assert validate_trace(tracer.records) == []
