"""The in-query parallel portfolio backend.

Unit tests cover the pure pieces (worker split, budget apportionment,
race aggregation — including the cube-family soundness rule that UNSAT
is only promoted when *every* cube refuted); integration tests race the
real process pool against the fresh backend and check interrupt and
budget plumbing end to end.
"""

import pytest

from repro.cases import case_problem, fig3_network
from repro.core import Property, ResiliencySpec, Status
from repro.engine import PortfolioBackend, VerificationEngine
from repro.engine import portfolio as pf
from repro.engine.portfolio import (
    _WorkerReport,
    _WorkerSpec,
    _apportion,
    _split_workers,
)
from repro.core.results import VerificationResult
from repro.sat.limits import Limits


@pytest.fixture
def fig3_case():
    return fig3_network(), case_problem()


# -- pure pieces -------------------------------------------------------


def test_split_workers_table():
    assert _split_workers(1) == (1, 0)
    assert _split_workers(2) == (2, 0)
    assert _split_workers(3) == (3, 0)
    assert _split_workers(4) == (2, 1)
    assert _split_workers(6) == (4, 1)
    assert _split_workers(8) == (4, 2)
    assert _split_workers(12) == (8, 2)


def test_apportion_passthrough_and_division():
    assert _apportion(None, 4, 0.1) is None
    unbounded = Limits()
    assert _apportion(unbounded, 4, 0.1) is unbounded

    limits = Limits(max_time=10.0, max_conflicts=1000,
                    max_propagations=999, max_memory_mb=256.0)
    share = _apportion(limits, 4, 2.0)
    assert share.max_time == pytest.approx(8.0)   # probe time deducted
    assert share.max_conflicts == 250             # divided across workers
    assert share.max_propagations == 250          # ceil(999 / 4)
    assert share.max_memory_mb == 256.0           # concurrent: passthrough

    # The wall clock never apportions below the 50ms floor.
    tight = _apportion(Limits(max_time=1.0), 2, 5.0)
    assert tight.max_time == pytest.approx(0.05)


def test_apportion_deducts_probe_search():
    """The probe's consumed conflicts/propagations come off the grant
    before division, so pool total + probe stays within the caller's
    budget (mirroring the max_time - elapsed handling)."""
    limits = Limits(max_conflicts=1000, max_propagations=10_000)
    share = _apportion(limits, 4, 0.0,
                       spent_conflicts=600, spent_propagations=8_000)
    assert share.max_conflicts == 100             # ceil((1000-600) / 4)
    assert share.max_propagations == 500          # ceil((10000-8000)/4)

    # An overspent probe still grants each worker the 1-unit floor.
    floor = _apportion(limits, 4, 0.0,
                       spent_conflicts=5000, spent_propagations=50_000)
    assert floor.max_conflicts == 1
    assert floor.max_propagations == 1


def test_worker_specs_cover_cube_space(fig3_case):
    network, problem = fig3_case
    backend = PortfolioBackend(network, problem, jobs=8)
    specs = backend._worker_specs(cube_vars=[5, 9])
    full = [w for w in specs if w.kind == "full"]
    cubes = [w for w in specs if w.kind == "cube"]
    assert len(full) == 4 and len(cubes) == 4
    # Diversified seeds: every worker explores a different order.
    assert len({w.solver_opts["seed"] for w in specs}) == len(specs)
    # The four cubes are exactly the sign combinations of vars 5 and 9
    # as DIMACS literals — the encoding the smt facade's ``cube``
    # option consumes — forming a covering family of the space.
    assert {w.cube for w in cubes} == {
        (5, 9), (-5, 9), (5, -9), (-5, -9)}


def _report(index, kind, status, elapsed, limit_reason=None):
    spec = ResiliencySpec.observability(k=1)
    result = VerificationResult(spec=spec, status=status,
                                limit_reason=limit_reason)
    label = f"{kind}-{index}"
    return _WorkerReport(index=index, kind=kind, label=label,
                         result=result, elapsed=elapsed, pid=0)


def _specs(full, cube_bits):
    specs = [_WorkerSpec(index=i, kind="full") for i in range(full)]
    for b in range(1 << cube_bits):
        specs.append(_WorkerSpec(index=full + b, kind="cube",
                                 cube=(10 + b,)))
    return specs


def test_aggregate_cube_family_win(fig3_case):
    """All cubes UNSAT == a real refutation; slowest cube closes it."""
    network, problem = fig3_case
    backend = PortfolioBackend(network, problem, jobs=8)
    spec = ResiliencySpec.observability(k=1)
    specs = _specs(full=2, cube_bits=1)
    reports = [
        _report(0, "full", Status.UNKNOWN, 0.5, "interrupt"),
        _report(2, "cube", Status.RESILIENT, 0.1),
        _report(3, "cube", Status.RESILIENT, 0.3),
    ]
    result = backend._aggregate(spec, specs, reports)
    assert result.status is Status.RESILIENT
    assert result.details["portfolio"]["win_kind"] == "cube-family"
    assert result.details["portfolio"]["winner"] == "cube-3"  # slowest


def test_aggregate_partial_cube_unsat_is_not_a_verdict(fig3_case):
    """One cube refuting its half-space proves nothing globally."""
    network, problem = fig3_case
    backend = PortfolioBackend(network, problem, jobs=8)
    spec = ResiliencySpec.observability(k=1)
    specs = _specs(full=2, cube_bits=1)
    reports = [
        _report(0, "full", Status.UNKNOWN, 0.5, "conflicts"),
        _report(1, "full", Status.UNKNOWN, 0.6, "interrupt"),
        _report(2, "cube", Status.RESILIENT, 0.1),
        # cube-3 never reported (cancelled / crashed)
    ]
    result = backend._aggregate(spec, specs, reports)
    assert result.status is Status.UNKNOWN
    # The most informative budget: a real resource, not the cancel.
    assert result.limit_reason == "conflicts"


def test_aggregate_sat_wins_over_everything(fig3_case):
    network, problem = fig3_case
    backend = PortfolioBackend(network, problem, jobs=8)
    spec = ResiliencySpec.observability(k=1)
    specs = _specs(full=2, cube_bits=0)
    reports = [
        _report(0, "full", Status.UNKNOWN, 0.1, "conflicts"),
        _report(1, "full", Status.THREAT_FOUND, 0.2),
    ]
    result = backend._aggregate(spec, specs, reports)
    assert result.status is Status.THREAT_FOUND
    assert result.details["portfolio"]["winner"] == "full-1"
    assert result.details["portfolio"]["win_kind"] == "full"


def test_aggregate_interrupt_reason_when_requested(fig3_case):
    network, problem = fig3_case
    backend = PortfolioBackend(network, problem, jobs=8)
    backend._interrupt_requested = True
    spec = ResiliencySpec.observability(k=1)
    specs = _specs(full=1, cube_bits=0)
    reports = [_report(0, "full", Status.UNKNOWN, 0.1, "conflicts")]
    result = backend._aggregate(spec, specs, reports)
    assert result.status is Status.UNKNOWN
    assert result.limit_reason == "interrupt"


# -- end to end --------------------------------------------------------


def test_portfolio_matches_fresh_verdicts_with_forced_fan_out(
        fig3_case, monkeypatch):
    """Satellite: fan-out answers == fresh answers along the k ladder.

    Shrinking the probe budget to one conflict forces the process pool
    on every non-trivial query, exercising the real race (the default
    probe would decide fig-3-sized queries by itself).
    """
    monkeypatch.setattr(pf, "PROBE_CONFLICTS", 1)
    network, problem = fig3_case
    fresh = VerificationEngine(network, problem, lint=False)
    port = VerificationEngine(network, problem, backend="portfolio",
                              jobs=4, lint=False)
    reference = fresh.reference
    for k in range(0, 4):
        spec = ResiliencySpec.observability(k=k)
        expected = fresh.verify(spec)
        got = port.verify(spec)
        assert got.status is expected.status, k
        assert got.backend == "portfolio"
        if got.status is Status.THREAT_FOUND:
            assert reference.is_threat(
                spec, set(got.threat.failed_devices))


def test_cube_only_fan_out_matches_fresh_verdicts(fig3_case, monkeypatch):
    """The cube family alone decides correctly on both verdict sides.

    Full workers usually win the race, which would mask a mis-encoded
    (non-covering) cube family — the regression here: cubes emitted as
    internal ``(v<<1)|sign`` literals read as DIMACS assert unrelated
    variables, so every cube can go UNSAT on a satisfiable instance and
    the aggregation would promote a bogus RESILIENT.  An all-cube pool
    makes the covering property itself carry the verdict.
    """
    monkeypatch.setattr(pf, "PROBE_CONFLICTS", 1)
    monkeypatch.setattr(pf, "_split_workers", lambda jobs: (0, 2))
    network, problem = fig3_case
    fresh = VerificationEngine(network, problem, lint=False)
    port = VerificationEngine(network, problem, backend="portfolio",
                              jobs=4, lint=False)
    decided_by_pool = False
    for k in range(1, 4):
        spec = ResiliencySpec.observability(k=k)
        expected = fresh.verify(spec)
        got = port.verify(spec)
        assert got.status is expected.status, k
        if "winner" in got.details["portfolio"]:
            decided_by_pool = True
    assert decided_by_pool


def test_portfolio_jobs_one_runs_inline(fig3_case):
    network, problem = fig3_case
    engine = VerificationEngine(network, problem, backend="portfolio",
                                jobs=1, lint=False)
    result = engine.verify(ResiliencySpec.observability(k=0))
    assert result.details["portfolio"] == {"mode": "inline", "workers": 0}
    assert result.backend == "portfolio"


def test_portfolio_probe_decides_easy_queries(fig3_case):
    network, problem = fig3_case
    engine = VerificationEngine(network, problem, backend="portfolio",
                                jobs=4, lint=False)
    result = engine.verify(ResiliencySpec.observability(k=0))
    assert result.details["portfolio"]["mode"] == "probe"
    assert result.status is Status.RESILIENT


def test_portfolio_certify_falls_back_to_fresh(fig3_case):
    network, problem = fig3_case
    engine = VerificationEngine(network, problem, backend="portfolio",
                                jobs=4, lint=False)
    result = engine.verify(ResiliencySpec.observability(k=0),
                           certify=True)
    assert result.is_resilient
    assert result.details.get("certify_fallback") == "fresh"
    assert result.details.get("proof_checked") is True


def test_portfolio_caller_conflict_budget_is_respected(fig3_case):
    """A caller cap below the probe's own budget must not fan out."""
    network, problem = fig3_case
    engine = VerificationEngine(network, problem, backend="portfolio",
                                jobs=4, lint=False)
    result = engine.verify(ResiliencySpec.observability(k=2),
                           limits=Limits(max_conflicts=1))
    assert result.status is Status.UNKNOWN
    assert result.limit_reason == "conflicts"
    assert "portfolio" not in result.details or \
        result.details["portfolio"].get("workers", 0) == 0


def test_portfolio_caller_propagation_budget_is_respected(fig3_case):
    """Same for propagations: a caller cap at/below the probe's own
    propagation budget expires the query instead of fanning out."""
    network, problem = fig3_case
    engine = VerificationEngine(network, problem, backend="portfolio",
                                jobs=4, lint=False)
    result = engine.verify(ResiliencySpec.observability(k=2),
                           limits=Limits(max_propagations=1))
    assert result.status is Status.UNKNOWN
    assert result.limit_reason == "propagations"
    assert "portfolio" not in result.details or \
        result.details["portfolio"].get("workers", 0) == 0


def test_probe_propagation_cap_triggers_fan_out(fig3_case, monkeypatch):
    """Propagation-bound queries (tiny conflict counts, huge unit
    propagation) must escape the probe: with the propagation cap forced
    to 1 the probe cannot decide, so the pool answers — and the verdict
    still matches the fresh backend."""
    network, problem = fig3_case
    monkeypatch.setattr(pf, "PROBE_PROPAGATIONS", 1)
    engine = VerificationEngine(network, problem, backend="portfolio",
                                jobs=4, lint=False)
    reference = VerificationEngine(network, problem, backend="fresh",
                                   lint=False)
    spec = ResiliencySpec.observability(k=1)
    result = engine.verify(spec)
    expected = reference.verify(spec)
    assert result.status is expected.status
    details = result.details["portfolio"]
    assert details.get("mode") != "probe"
    assert details["workers"] > 0


def test_portfolio_interrupt_and_clear(fig3_case):
    network, problem = fig3_case
    engine = VerificationEngine(network, problem, backend="portfolio",
                                jobs=4, lint=False)
    spec = ResiliencySpec.observability(k=1)
    engine.interrupt()
    result = engine.verify(spec)
    assert result.status is Status.UNKNOWN
    assert result.limit_reason == "interrupt"
    engine.clear_interrupt()
    again = engine.verify(spec)
    assert again.status is not Status.UNKNOWN


def test_engine_accumulates_solver_stats(fig3_case):
    network, problem = fig3_case
    engine = VerificationEngine(network, problem, backend="assumption",
                                lint=False)
    engine.verify(ResiliencySpec.observability(k=1))
    engine.verify(ResiliencySpec.observability(k=2))
    totals = engine.cumulative_stats
    assert totals["queries"] == 2.0
    assert totals.get("conflicts", 0.0) >= 0.0
    assert "check_time" in totals
    # Tier keys are last-seen gauges, present after any check.
    assert "tier_core" in totals
