"""SweepExecutor: ordering, determinism, jobs resolution, and fault
tolerance (crashes, hangs, exceptions must not take down neighbours)."""

import os
import time

import pytest

from repro.analysis import sweep_bus_sizes
from repro.engine import SweepExecutor, SweepTaskError, resolve_jobs


def _square(x):
    return x * x


def _add(a, b):
    return a + b


def _crash_on_three(x):
    if x == 3:
        os._exit(17)  # hard kill: no exception, no cleanup
    return x * x


def _raise_on_two(x):
    if x == 2:
        raise ValueError(f"bad task {x}")
    return x * x


def _hang_on_one(x):
    if x == 1:
        time.sleep(60.0)
    return x * x


_FLAKY_MARKER = os.path.join("/tmp", "repro_sweep_flaky_marker")


def _flaky_once(x):
    # Fails the first time it is ever called for x == 2, succeeds on
    # the retry (a file marker survives across worker processes).
    if x == 2 and not os.path.exists(_FLAKY_MARKER):
        with open(_FLAKY_MARKER, "w") as fh:
            fh.write("seen")
        raise RuntimeError("transient failure")
    return x * x


def test_resolve_jobs():
    assert resolve_jobs(1) == 1
    assert resolve_jobs(7) == 7
    assert resolve_jobs(None) >= 1
    assert resolve_jobs(0) >= 1
    with pytest.raises(ValueError):
        resolve_jobs(-2)


def test_inline_map_preserves_order():
    executor = SweepExecutor(jobs=1)
    assert executor.map(_square, [3, 1, 2]) == [9, 1, 4]
    assert executor.last_wall_time >= 0.0


def test_pool_map_matches_inline():
    tasks = list(range(12))
    inline = SweepExecutor(jobs=1).map(_square, tasks)
    pooled = SweepExecutor(jobs=4).map(_square, tasks)
    assert pooled == inline


def test_starmap_inline_and_pooled():
    tasks = [(1, 2), (3, 4), (10, -1)]
    assert SweepExecutor(jobs=1).starmap(_add, tasks) == [3, 7, 9]
    assert SweepExecutor(jobs=3).starmap(_add, tasks) == [3, 7, 9]


def test_worker_crash_keeps_other_results():
    # One task hard-kills its worker; every other task still returns.
    executor = SweepExecutor(jobs=2)
    results = executor.map(_crash_on_three, [0, 1, 2, 3, 4, 5],
                           on_error="return")
    for i in (0, 1, 2, 4, 5):
        assert results[i] == i * i
    assert isinstance(results[3], SweepTaskError)
    assert results[3].index == 3
    assert results[3].task == 3
    assert executor.last_failures == [results[3]]


def test_worker_crash_raises_with_task_index():
    with pytest.raises(SweepTaskError) as excinfo:
        SweepExecutor(jobs=2).map(_crash_on_three, [0, 3])
    assert excinfo.value.index == 1
    assert "#1" in str(excinfo.value)


def test_worker_exception_attributed_to_task():
    executor = SweepExecutor(jobs=2)
    results = executor.map(_raise_on_two, [1, 2, 3], on_error="return")
    assert results[0] == 1 and results[2] == 9
    err = results[1]
    assert isinstance(err, SweepTaskError)
    assert err.index == 1
    assert err.cause_type == "ValueError"
    assert "bad task 2" in err.cause_message
    assert "ValueError" in err.worker_traceback


def test_inline_exception_attributed_to_task():
    executor = SweepExecutor(jobs=1)
    results = executor.map(_raise_on_two, [1, 2, 3], on_error="return")
    assert results[0] == 1 and results[2] == 9
    assert isinstance(results[1], SweepTaskError)
    assert results[1].cause_type == "ValueError"
    with pytest.raises(SweepTaskError):
        SweepExecutor(jobs=1).map(_raise_on_two, [2])


def test_hung_task_times_out_and_neighbours_survive():
    executor = SweepExecutor(jobs=2)
    started = time.monotonic()
    results = executor.map(_hang_on_one, [0, 1, 2, 3], timeout=2.0,
                           on_error="return")
    elapsed = time.monotonic() - started
    assert results[0] == 0 and results[2] == 4 and results[3] == 9
    err = results[1]
    assert isinstance(err, SweepTaskError)
    assert err.index == 1
    assert err.cause_type == "Timeout"
    assert elapsed < 30.0  # nowhere near the 60s the hang would take


def test_retry_recovers_transient_failure():
    if os.path.exists(_FLAKY_MARKER):
        os.remove(_FLAKY_MARKER)
    try:
        executor = SweepExecutor(jobs=2)
        results = executor.map(_flaky_once, [1, 2, 3], retries=1)
        assert results == [1, 4, 9]
        assert executor.last_failures == []
    finally:
        if os.path.exists(_FLAKY_MARKER):
            os.remove(_FLAKY_MARKER)


def _hang_marking(path):
    # Records one line per actual execution, then hangs (the `.ok`
    # variant returns immediately so the pool path is exercised).
    if path.endswith(".ok"):
        return "ok"
    with open(path, "a") as fh:
        fh.write("run\n")
    time.sleep(60.0)


def test_timeout_attempts_match_actual_runs(tmp_path):
    # Regression: the pooled attempt that timed out was not counted,
    # so a hung task ran retries+2 times while SweepTaskError reported
    # retries+1 attempts.  The marker file counts real executions.
    ok = str(tmp_path / "task.ok")
    marker = str(tmp_path / "task.runs")
    executor = SweepExecutor(jobs=2)
    results = executor.map(_hang_marking, [ok, marker], timeout=1.5,
                           retries=1, on_error="return")
    assert results[0] == "ok"
    err = results[1]
    assert isinstance(err, SweepTaskError)
    assert err.cause_type == "Timeout"
    with open(marker) as fh:
        runs = len(fh.read().splitlines())
    assert err.attempts == 2  # pooled timeout + one solo retry
    assert runs == err.attempts


def test_unexpected_error_still_kills_hung_pool(monkeypatch):
    # Regression: an exception escaping the drain loop (here a broken
    # telemetry settle) reached a cooperative shutdown(wait=True) that
    # blocked forever behind the hung worker.  The pool must be killed
    # on *every* exit path, so the error propagates promptly.
    def explode(self, value, index):
        raise RuntimeError("telemetry plumbing failed")

    monkeypatch.setattr(SweepExecutor, "_settle", explode)
    executor = SweepExecutor(jobs=2)
    started = time.monotonic()
    with pytest.raises(RuntimeError, match="telemetry plumbing"):
        executor.map(_hang_on_one, [0, 1], timeout=30.0)
    assert time.monotonic() - started < 10.0


def test_retry_exhaustion_counts_attempts():
    executor = SweepExecutor(jobs=2)
    results = executor.map(_raise_on_two, [2], retries=2,
                           on_error="return")
    err = results[0]
    assert isinstance(err, SweepTaskError)
    assert err.attempts == 3  # initial + 2 retries


def test_map_argument_validation():
    executor = SweepExecutor(jobs=1)
    with pytest.raises(ValueError):
        executor.map(_square, [1], on_error="ignore")
    with pytest.raises(ValueError):
        executor.map(_square, [1], retries=-1)


def _point_key(point):
    """Everything deterministic about a ScalingPoint (times are not)."""
    return (point.bus_size, point.hierarchy, point.seed, point.backend,
            point.num_devices, point.max_k,
            point.sat_num_vars, point.sat_num_clauses,
            point.unsat_num_vars, point.unsat_num_clauses,
            len(point.sat_times), len(point.unsat_times))


@pytest.mark.parametrize("backend", ["fresh", "incremental"])
def test_sweep_deterministic_across_jobs(backend):
    kwargs = dict(seeds=(0, 1), runs=1, backend=backend)
    serial = sweep_bus_sizes([14], jobs=1, **kwargs)
    parallel = sweep_bus_sizes([14], jobs=4, **kwargs)
    assert [_point_key(p) for p in serial.points] == \
        [_point_key(p) for p in parallel.points]


def test_resolve_jobs_reserve_only_shapes_auto_sizing():
    # Auto sizing holds back `reserve` cores (the service daemon keeps
    # one for its event loop) but never drops below one worker.
    auto = resolve_jobs(None)
    assert resolve_jobs(None, reserve=1) == max(1, auto - 1)
    assert resolve_jobs(0, reserve=1) == max(1, auto - 1)
    assert resolve_jobs(None, reserve=10_000) == 1
    # An explicit request is the operator's call — reserve is ignored.
    assert resolve_jobs(4, reserve=1) == 4
    assert resolve_jobs(1, reserve=3) == 1
    with pytest.raises(ValueError):
        resolve_jobs(None, reserve=-1)
