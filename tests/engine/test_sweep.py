"""SweepExecutor: ordering, determinism, and jobs resolution."""

import pytest

from repro.analysis import sweep_bus_sizes
from repro.engine import SweepExecutor, resolve_jobs


def _square(x):
    return x * x


def _add(a, b):
    return a + b


def test_resolve_jobs():
    assert resolve_jobs(1) == 1
    assert resolve_jobs(7) == 7
    assert resolve_jobs(None) >= 1
    assert resolve_jobs(0) >= 1
    with pytest.raises(ValueError):
        resolve_jobs(-2)


def test_inline_map_preserves_order():
    executor = SweepExecutor(jobs=1)
    assert executor.map(_square, [3, 1, 2]) == [9, 1, 4]
    assert executor.last_wall_time >= 0.0


def test_pool_map_matches_inline():
    tasks = list(range(12))
    inline = SweepExecutor(jobs=1).map(_square, tasks)
    pooled = SweepExecutor(jobs=4).map(_square, tasks)
    assert pooled == inline


def test_starmap_inline_and_pooled():
    tasks = [(1, 2), (3, 4), (10, -1)]
    assert SweepExecutor(jobs=1).starmap(_add, tasks) == [3, 7, 9]
    assert SweepExecutor(jobs=3).starmap(_add, tasks) == [3, 7, 9]


def _point_key(point):
    """Everything deterministic about a ScalingPoint (times are not)."""
    return (point.bus_size, point.hierarchy, point.seed, point.backend,
            point.num_devices, point.max_k,
            point.sat_num_vars, point.sat_num_clauses,
            point.unsat_num_vars, point.unsat_num_clauses,
            len(point.sat_times), len(point.unsat_times))


@pytest.mark.parametrize("backend", ["fresh", "incremental"])
def test_sweep_deterministic_across_jobs(backend):
    kwargs = dict(seeds=(0, 1), runs=1, backend=backend)
    serial = sweep_bus_sizes([14], jobs=1, **kwargs)
    parallel = sweep_bus_sizes([14], jobs=4, **kwargs)
    assert [_point_key(p) for p in serial.points] == \
        [_point_key(p) for p in parallel.points]
