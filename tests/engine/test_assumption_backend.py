"""The assumption backend: shared-solver semantics beyond verdicts.

``tests/engine/test_backends.py`` already property-checks that the
``assumption`` backend is verdict- and threat-space-equivalent to the
others (it iterates ``BACKEND_NAMES``).  These tests cover what is
specific to assumption-selected budgets: bad-data detectability sweeps
over the redundancy parameter ``r`` through one cached context, query
isolation on the shared solver, and the engine plumbing around it.
"""

import pytest

from repro.cases import case_problem, fig3_network
from repro.core import Property, ResiliencySpec, Status
from repro.engine import VerificationEngine


@pytest.fixture
def fig3_case():
    return fig3_network(), case_problem()


def test_bad_data_r_sweep_matches_fresh(fig3_case):
    """Every (k, r) verdict agrees with fresh — through ONE context."""
    network, problem = fig3_case
    fresh = VerificationEngine(network, problem, backend="fresh",
                               lint=False)
    assumption = VerificationEngine(network, problem,
                                    backend="assumption", lint=False)
    for r in (1, 2, 3):
        for k in range(0, 4):
            spec = ResiliencySpec.for_property(
                Property.BAD_DATA_DETECTABILITY, r=r, k=k)
            expected = fresh.verify(spec, minimize=False).status
            got = assumption.verify(spec, minimize=False).status
            assert got == expected, (r, k)
    # All r values were served by a single cached encoding.
    assert len(assumption.cache) == 1


def test_r_sweep_uses_one_context_incremental_uses_many(fig3_case):
    network, problem = fig3_case
    incremental = VerificationEngine(network, problem,
                                     backend="incremental", lint=False)
    assumption = VerificationEngine(network, problem,
                                    backend="assumption", lint=False)
    for r in (1, 2):
        spec = ResiliencySpec.for_property(
            Property.BAD_DATA_DETECTABILITY, r=r, k=1)
        incremental.verify(spec, minimize=False)
        assumption.verify(spec, minimize=False)
    assert len(incremental.cache) == 2  # one context per r
    assert len(assumption.cache) == 1   # r selected per query


def test_interleaved_budgets_stay_isolated(fig3_case):
    """Revisiting a budget after others gives the same verdict — no
    constraint from one query leaks into the next."""
    network, problem = fig3_case
    engine = VerificationEngine(network, problem, backend="assumption",
                                lint=False)
    first = {}
    for k in (0, 2, 1, 3):
        spec = ResiliencySpec.observability(k=k)
        first[k] = engine.verify(spec, minimize=False).status
    for k in (3, 0, 1, 2):
        spec = ResiliencySpec.observability(k=k)
        assert engine.verify(spec, minimize=False).status == first[k], k
    # Monotonicity as a sanity check on the sweep itself.
    assert first[0] is Status.RESILIENT
    assert first[3] is Status.THREAT_FOUND


def test_enumeration_blocks_do_not_leak(fig3_case):
    """Blocking clauses from an enumeration stay scoped: the same spec
    enumerates the same space twice on the shared solver."""
    network, problem = fig3_case
    engine = VerificationEngine(network, problem, backend="assumption",
                                lint=False)
    spec = ResiliencySpec.observability(k=2)
    once = {frozenset(v.failed_devices)
            for v in engine.enumerate_threat_vectors(spec)}
    again = {frozenset(v.failed_devices)
             for v in engine.enumerate_threat_vectors(spec)}
    assert once == again
    assert once  # fig3 has threats at k=2


def test_repeated_budget_adds_no_encoding(fig3_case):
    """The second query at a budget re-encodes nothing (delta = 0)."""
    network, problem = fig3_case
    engine = VerificationEngine(network, problem, backend="assumption",
                                lint=False)
    spec = ResiliencySpec.observability(k=1)
    first = engine.verify(spec, minimize=False)
    second = engine.verify(spec, minimize=False)
    assert second.num_vars <= first.num_vars
    assert second.num_clauses <= first.num_clauses
    assert second.backend == "assumption"


def test_with_backend_shares_cache_and_reference(fig3_case):
    network, problem = fig3_case
    engine = VerificationEngine(network, problem, backend="fresh",
                                lint=False)
    sibling = engine.with_backend("assumption")
    assert sibling is not engine
    assert sibling.backend_name == "assumption"
    assert sibling.cache is engine.cache
    assert sibling.reference is engine.reference
    assert engine.with_backend("fresh") is engine


def test_certify_falls_back_to_fresh(fig3_case):
    network, problem = fig3_case
    engine = VerificationEngine(network, problem, backend="assumption",
                                lint=False)
    spec = ResiliencySpec.observability(k=0)
    result = engine.verify(spec, certify=True)
    assert result.is_resilient
    assert result.details.get("certify_fallback") == "fresh"
