"""VerificationEngine facade: lint gate, stats, cache reuse, export."""

import pytest

from repro.cases import case_problem, fig3_network
from repro.core import (
    ConfigurationLintError,
    Property,
    ResiliencySpec,
    ScadaAnalyzer,
)
from repro.engine import VerificationEngine


@pytest.fixture
def fig3_engine():
    return VerificationEngine(fig3_network(), case_problem())


def test_results_carry_backend_and_stats(fig3_engine):
    result = fig3_engine.verify(ResiliencySpec.observability(k=1))
    assert result.backend == "fresh"
    assert "check_time" in result.stats
    assert result.stats["decisions"] >= 0


def test_incremental_stats_are_per_query_deltas():
    network, problem = fig3_network(), case_problem()
    engine = VerificationEngine(network, problem, backend="incremental")
    first = engine.verify(ResiliencySpec.observability(k=1),
                          minimize=False)
    second = engine.verify(ResiliencySpec.observability(k=1),
                           minimize=False)
    # Same query twice on the shared solver: cumulative counters would
    # double, per-query deltas stay in the same ballpark.
    assert second.stats["conflicts"] <= first.stats["conflicts"] + 1
    # Encoding sizes report base + this query's delta, not the running
    # total of every budget pushed so far (the old cumulative bug).
    assert second.num_vars <= first.num_vars
    assert second.num_clauses <= first.num_clauses


def test_incremental_reuses_cached_encoding():
    engine = VerificationEngine(fig3_network(), case_problem(),
                                backend="incremental")
    for k in range(3):
        engine.verify(ResiliencySpec.observability(k=k), minimize=False)
    engine.verify(ResiliencySpec.secured_observability(k=1),
                  minimize=False)
    assert engine.cache.misses == 2  # one context per property
    assert engine.cache.hits == 2   # the two repeat observability queries


def test_lint_gate_runs_once_at_construction():
    network, problem = fig3_network(), case_problem()
    engine = VerificationEngine(network, problem, lint=True)
    assert engine.backend_name == "fresh"

    # A config that fails lint must be rejected up front.
    bad_problem = problem.__class__(
        num_states=problem.num_states + 5,
        state_sets=problem.state_sets,
        unique_groups=problem.unique_groups,
    )
    with pytest.raises(ConfigurationLintError):
        VerificationEngine(network, bad_problem, lint=True)
    # ... unless the caller explicitly opts out.
    VerificationEngine(network, bad_problem, lint=False)


def test_wrap_passes_engine_through_and_adapts_analyzer():
    network, problem = fig3_network(), case_problem()
    engine = VerificationEngine(network, problem)
    assert VerificationEngine.wrap(engine) is engine

    analyzer = ScadaAnalyzer(network, problem, preprocess=True)
    wrapped = VerificationEngine.wrap(analyzer)
    assert wrapped.backend_name == "preprocessed"
    assert wrapped.reference is analyzer.reference


def test_exports_available_on_every_backend():
    network, problem = fig3_network(), case_problem()
    spec = ResiliencySpec.observability(k=1)
    for backend in ("fresh", "incremental"):
        engine = VerificationEngine(network, problem, backend=backend)
        size = engine.model_size(spec)
        assert size["vars"] > 0 and size["clauses"] > 0
        assert "(set-logic" in engine.export_smtlib(spec)


def test_max_searches_on_engine(fig3_engine):
    total = fig3_engine.max_total_resiliency(Property.OBSERVABILITY)
    ied = fig3_engine.max_ied_resiliency(Property.OBSERVABILITY)
    rtu = fig3_engine.max_rtu_resiliency(Property.OBSERVABILITY)
    assert total >= 0
    assert ied >= total
    assert rtu >= 0


@pytest.mark.parametrize("backend", ["fresh", "assumption"])
def test_interrupt_round_trip_keeps_engine_usable(backend):
    from repro.core.results import Status

    engine = VerificationEngine(fig3_network(), case_problem(),
                                backend=backend)
    spec = ResiliencySpec.observability(k=1)
    engine.interrupt()
    stopped = engine.verify(spec, minimize=False)
    assert stopped.status is Status.UNKNOWN
    assert stopped.limit_reason == "interrupt"
    engine.clear_interrupt()
    # The same engine (and any warm context) answers normally again.
    verdict = engine.verify(spec, minimize=False)
    assert verdict.status in (Status.RESILIENT, Status.THREAT_FOUND)
