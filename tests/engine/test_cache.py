"""Encoding cache: keying, LRU eviction, hit accounting, poisoning,
thread-safety under the service's concurrent request threads."""

import threading

import pytest

from repro.core import ObservabilityProblem, Property, ResiliencySpec
from repro.engine import EncodingCache, EncodingKey
from repro.engine.backends import IncrementalBackend
from repro.grid.ieee_cases import case_by_buses
from repro.sat import Limits, ResourceLimitReached
from repro.scada import GeneratorConfig, generate_scada


def _key(prop=Property.OBSERVABILITY, r=1, network_fp="n", problem_fp="p",
         model_links=False, card="totalizer"):
    return EncodingKey(network_fingerprint=network_fp,
                       problem_fingerprint=problem_fp,
                       prop=prop, r=r, model_links=model_links,
                       card_encoding=card)


def test_get_or_create_caches_and_counts():
    cache = EncodingCache()
    built = []

    def factory():
        built.append(1)
        return object()

    key = _key()
    first = cache.get_or_create(key, factory)
    second = cache.get_or_create(key, factory)
    assert first is second
    assert len(built) == 1
    assert cache.hits == 1
    assert cache.misses == 1


def test_distinct_keys_distinct_entries():
    cache = EncodingCache()
    a = cache.get_or_create(_key(prop=Property.OBSERVABILITY), object)
    b = cache.get_or_create(_key(prop=Property.SECURED_OBSERVABILITY),
                            object)
    c = cache.get_or_create(_key(r=2), object)
    assert len({id(a), id(b), id(c)}) == 3
    assert len(cache) == 3


def test_lru_eviction_drops_oldest():
    cache = EncodingCache(maxsize=2)
    key_a, key_b, key_c = _key(r=1), _key(r=2), _key(r=3)
    a = cache.get_or_create(key_a, object)
    cache.get_or_create(key_b, object)
    # Touch A so B becomes the least recently used entry.
    assert cache.get(key_a) is a
    cache.get_or_create(key_c, object)
    assert len(cache) == 2
    assert cache.get(key_b) is None
    assert cache.get(key_a) is a


def test_zero_size_cache_rejected():
    with pytest.raises(ValueError):
        EncodingCache(maxsize=0)


def test_invalidate_drops_single_entry():
    cache = EncodingCache()
    key_a, key_b = _key(r=1), _key(r=2)
    cache.get_or_create(key_a, object)
    b = cache.get_or_create(key_b, object)
    assert cache.invalidate(key_a) is True
    assert cache.invalidate(key_a) is False  # already gone
    assert cache.get(key_a) is None
    assert cache.get(key_b) is b


def _fig3_backend():
    from repro.cases import case_problem, fig3_network

    return IncrementalBackend(fig3_network(), case_problem())


def test_backend_evicts_poisoned_context():
    backend = _fig3_backend()
    spec = ResiliencySpec.observability(k=0)
    backend.verify(spec, minimize=False)
    key, ctx = backend._context(spec)
    assert backend.cache.get(key) is ctx

    def explode(*args, **kwargs):
        raise RuntimeError("solver wedged mid-scope")

    ctx.verify = explode  # type: ignore[method-assign]
    with pytest.raises(RuntimeError, match="wedged"):
        backend.verify(spec, minimize=False)
    # The poisoned context is gone; the next query rebuilds cleanly.
    assert backend.cache.get(key) is None
    result = backend.verify(spec, minimize=False)
    assert result.status is not None


def test_backend_keeps_context_on_clean_limit():
    backend = _fig3_backend()
    spec = ResiliencySpec.observability(k=0)
    backend.verify(spec, minimize=False)
    key, ctx = backend._context(spec)

    def out_of_budget(*args, **kwargs):
        raise ResourceLimitReached("time limit", reason=None)

    original = ctx.verify
    ctx.verify = out_of_budget  # type: ignore[method-assign]
    with pytest.raises(ResourceLimitReached):
        backend.verify(spec, minimize=False,
                       limits=Limits(max_time=0.001))
    # A clean UNKNOWN does not poison the encoding: still cached.
    assert backend.cache.get(key) is ctx
    ctx.verify = original  # type: ignore[method-assign]


def test_network_fingerprint_tracks_configuration():
    synthetic = generate_scada(case_by_buses(14, seed=0),
                               GeneratorConfig(seed=0))
    same = generate_scada(case_by_buses(14, seed=0),
                          GeneratorConfig(seed=0))
    other = generate_scada(case_by_buses(14, seed=1),
                           GeneratorConfig(seed=1))
    assert synthetic.network.fingerprint() == same.network.fingerprint()
    assert synthetic.network.fingerprint() != other.network.fingerprint()

    problem = ObservabilityProblem.from_table(synthetic.table)
    again = ObservabilityProblem.from_table(same.table)
    assert problem.fingerprint() == again.fingerprint()


def test_eviction_counter_tracks_lru_overflow():
    cache = EncodingCache(maxsize=2)
    for name in ("a", "b", "c"):
        cache.get_or_create(_key(network_fp=name), object)
    assert len(cache) == 2
    assert cache.evictions == 1


def test_get_or_create_atomic_wrt_invalidate_config():
    # Regression: get_or_create was check-then-act — an
    # invalidate_config issued from another thread while the factory
    # was still encoding removed nothing, and the subsequent put
    # resurrected a context for a configuration the operator had just
    # declared stale.  With the cache lock held across the factory,
    # the invalidation serializes after the in-flight create and wins.
    cache = EncodingCache()
    key = _key(network_fp="grid", problem_fp="prob")
    factory_entered = threading.Event()
    release_factory = threading.Event()

    def slow_factory():
        factory_entered.set()
        release_factory.wait(timeout=10.0)
        return object()

    creator = threading.Thread(
        target=cache.get_or_create, args=(key, slow_factory))
    creator.start()
    assert factory_entered.wait(timeout=10.0)
    # Let the factory finish shortly after invalidate_config blocks on
    # the cache lock (pre-fix it does not block and returns 0 at once).
    releaser = threading.Timer(0.2, release_factory.set)
    releaser.start()
    try:
        dropped = cache.invalidate_config("grid", "prob")
    finally:
        release_factory.set()
        creator.join(timeout=10.0)
        releaser.cancel()
    assert not creator.is_alive()
    assert dropped == 1
    assert cache.get(key) is None
    assert len(cache) == 0


def test_invalidate_config_drops_only_that_configuration():
    cache = EncodingCache()
    cache.get_or_create(_key(network_fp="n1", problem_fp="p1"), object)
    cache.get_or_create(_key(network_fp="n1", problem_fp="p1",
                             prop=Property.SECURED_OBSERVABILITY),
                        object)
    cache.get_or_create(_key(network_fp="n2", problem_fp="p2"), object)
    assert cache.invalidate_config("n1", "p1") == 2
    assert len(cache) == 1
    assert cache.invalidate_config("n1", "p1") == 0
    remaining = list(cache.keys())
    assert remaining[0].network_fingerprint == "n2"
