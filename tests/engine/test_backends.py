"""Backend equivalence: fresh, incremental, and preprocessed must agree.

The property test generates randomized SCADA instances (the §V-A
generator over IEEE cases) and random specifications, then checks that
every backend returns the same verdict and that any threat vector is
confirmed by the reference evaluator — the strongest cross-check the
substrate offers.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    ObservabilityProblem,
    Property,
    ResiliencySpec,
    Status,
)
from repro.engine import BACKEND_NAMES, VerificationEngine
from repro.grid.ieee_cases import case_by_buses
from repro.scada import GeneratorConfig, generate_scada


def _instance(seed: int, secure_fraction: float):
    config = GeneratorConfig(measurement_fraction=0.7,
                             hierarchy_level=1,
                             secure_fraction=secure_fraction,
                             seed=seed)
    synthetic = generate_scada(case_by_buses(14, seed=seed), config)
    problem = ObservabilityProblem.from_table(synthetic.table)
    return synthetic.network, problem


def _engines(network, problem):
    return {name: VerificationEngine(network, problem, backend=name,
                                     lint=False)
            for name in BACKEND_NAMES}


@settings(max_examples=12, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=40),
    secure=st.sampled_from([0.6, 0.8, 1.0]),
    k=st.integers(min_value=0, max_value=4),
    prop=st.sampled_from([Property.OBSERVABILITY,
                          Property.SECURED_OBSERVABILITY,
                          Property.COMMAND_DELIVERABILITY]),
)
def test_backends_verdict_equivalent(seed, secure, k, prop):
    network, problem = _instance(seed, secure)
    spec = ResiliencySpec.for_property(prop, k=k)
    results = {name: engine.verify(spec)
               for name, engine in _engines(network, problem).items()}

    statuses = {name: result.status for name, result in results.items()}
    assert len(set(statuses.values())) == 1, statuses

    reference = VerificationEngine(network, problem, lint=False).reference
    for name, result in results.items():
        assert result.backend == name
        if result.status is Status.THREAT_FOUND:
            assert result.threat is not None
            failed = set(result.threat.failed_devices)
            assert reference.is_threat(spec, failed), (name, failed)


@settings(max_examples=6, deadline=None)
@given(seed=st.integers(min_value=0, max_value=20),
       k=st.integers(min_value=1, max_value=3))
def test_backends_enumerate_same_threat_space(seed, k):
    network, problem = _instance(seed, 0.8)
    spec = ResiliencySpec.observability(k=k)
    spaces = {
        name: engine.enumerate_threat_vectors(spec, limit=60)
        for name, engine in _engines(network, problem).items()
    }
    canonical = {
        name: {frozenset(v.failed_devices) for v in vectors}
        for name, vectors in spaces.items()
    }
    for name in BACKEND_NAMES:
        assert canonical["fresh"] == canonical[name], name


def test_max_resiliency_equivalent_across_backends(fig3_case):
    network, problem = fig3_case
    maxima = {
        name: VerificationEngine(network, problem, backend=name,
                                 lint=False).max_total_resiliency(
                                     Property.OBSERVABILITY)
        for name in BACKEND_NAMES
    }
    assert len(set(maxima.values())) == 1, maxima


def test_incremental_certify_falls_back_to_fresh(fig3_case):
    network, problem = fig3_case
    engine = VerificationEngine(network, problem, backend="incremental",
                                lint=False)
    spec = ResiliencySpec.observability(k=0)
    result = engine.verify(spec, certify=True)
    assert result.is_resilient
    assert result.details.get("certify_fallback") == "fresh"
    assert result.details.get("proof_checked") is True


def test_unknown_backend_rejected(fig3_case):
    network, problem = fig3_case
    with pytest.raises(ValueError, match="unknown backend"):
        VerificationEngine(network, problem, backend="quantum",
                           lint=False)


@pytest.fixture
def fig3_case():
    from repro.cases import case_problem, fig3_network

    return fig3_network(), case_problem()
