"""Multi-MTU SCADA systems (paper §III-B: one main MTU, secondaries
relay to it)."""

import pytest

from repro.core import (
    ObservabilityProblem,
    ResiliencySpec,
    ScadaAnalyzer,
    Status,
)
from repro.scada import CryptoProfile, Device, DeviceType, Link, ScadaNetwork


def _two_mtu_network(main=None):
    """IED 1 → RTU 2 → secondary MTU 4 → main MTU 3."""
    devices = [
        Device(1, DeviceType.IED),
        Device(2, DeviceType.RTU),
        Device(3, DeviceType.MTU),
        Device(4, DeviceType.MTU),
    ]
    links = [Link(1, 1, 2), Link(2, 2, 4), Link(3, 4, 3)]
    security = {
        (1, 2): CryptoProfile.parse_many("chap 64 sha2 128"),
        (2, 4): CryptoProfile.parse_many("rsa 2048 aes 256"),
        (3, 4): CryptoProfile.parse_many("rsa 2048 aes 256"),
    }
    return ScadaNetwork(devices=devices, links=links,
                        measurement_map={1: [1]},
                        pair_security=security,
                        main_mtu=main)


def test_lowest_id_mtu_is_main_by_default():
    network = _two_mtu_network()
    assert network.mtu_id == 3
    assert network.mtu_ids == [3, 4]


def test_explicit_main_mtu():
    network = _two_mtu_network(main=4)
    assert network.mtu_id == 4
    # With MTU 4 as main, IED 1's path ends there directly.
    assert network.forwarding_paths(1) == [[1, 2, 4]]


def test_invalid_main_mtu_rejected():
    with pytest.raises(ValueError):
        _two_mtu_network(main=2)  # an RTU
    with pytest.raises(ValueError):
        _two_mtu_network(main=99)


def test_no_mtu_rejected():
    with pytest.raises(ValueError):
        ScadaNetwork(
            devices=[Device(1, DeviceType.IED), Device(2, DeviceType.RTU)],
            links=[Link(1, 1, 2)],
            measurement_map={1: [1]})


def test_paths_relay_through_secondary_mtu():
    network = _two_mtu_network()
    assert network.forwarding_paths(1) == [[1, 2, 4, 3]]
    # The secondary MTU is a real pairing endpoint, not transparent.
    assert network.secured_paths(1) == [[1, 2, 4, 3]]


def test_secondary_mtu_never_fails_in_model():
    """Like routers and the main MTU, secondary MTUs are not failure
    candidates (only field devices populate the budget)."""
    network = _two_mtu_network()
    assert 4 not in network.field_device_ids
    problem = ObservabilityProblem(num_states=1, state_sets={1: [1]},
                                   unique_groups=[[1]])
    analyzer = ScadaAnalyzer(network, problem)
    # Only IED 1 or RTU 2 can fail; either breaks observability.
    result = analyzer.verify(ResiliencySpec.observability(k=1))
    assert result.status is Status.THREAT_FOUND
    assert result.threat.failed_devices <= {1, 2}
    result = analyzer.verify(ResiliencySpec.observability(k=0))
    assert result.status is Status.RESILIENT


def test_single_mtu_networks_unchanged():
    from repro.cases import fig3_network
    network = fig3_network()
    assert network.mtu_id == 13
    assert network.mtu_ids == [13]
