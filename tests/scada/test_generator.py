"""The synthetic SCADA generator (§V-A policy)."""

import pytest

from repro.core import ObservabilityProblem
from repro.grid import ieee14, case30
from repro.scada import GeneratorConfig, generate_scada


def test_config_validation():
    with pytest.raises(ValueError):
        GeneratorConfig(hierarchy_level=0)
    with pytest.raises(ValueError):
        GeneratorConfig(measurement_fraction=0)
    with pytest.raises(ValueError):
        GeneratorConfig(secure_fraction=1.5)


def test_degenerate_knobs_rejected_up_front():
    # Regression: rtus_per_bus and extra_rtu_link_fraction were never
    # validated — zero/negative RTU densities silently clamped to the
    # 2-RTU floor and NaN sailed straight through into the topology.
    with pytest.raises(ValueError, match="rtus_per_bus"):
        GeneratorConfig(rtus_per_bus=0)
    with pytest.raises(ValueError, match="rtus_per_bus"):
        GeneratorConfig(rtus_per_bus=-0.5)
    with pytest.raises(ValueError, match="rtus_per_bus"):
        GeneratorConfig(rtus_per_bus=float("nan"))
    with pytest.raises(ValueError, match="extra_rtu_link_fraction"):
        GeneratorConfig(extra_rtu_link_fraction=-0.1)
    with pytest.raises(ValueError, match="extra_rtu_link_fraction"):
        GeneratorConfig(extra_rtu_link_fraction=1.5)
    # Boundary values stay legal.
    GeneratorConfig(extra_rtu_link_fraction=0.0)
    GeneratorConfig(extra_rtu_link_fraction=1.0)
    GeneratorConfig(rtus_per_bus=0.01)


def test_hierarchy_deeper_than_rtu_count_rejected():
    # Regression: a hierarchy deeper than the RTU count used to be
    # accepted and silently flattened (and an unbounded depth range
    # made _assign_levels allocate O(2h) scratch for any h).  It now
    # fails fast with a diagnostic naming both knobs.
    config = GeneratorConfig(hierarchy_level=10)  # 14 buses → 5 RTUs
    with pytest.raises(ValueError, match="hierarchy_level"):
        generate_scada(ieee14(), config)
    # Absurd depths fail fast too, instead of allocating O(2h) scratch.
    with pytest.raises(ValueError, match="hierarchy_level"):
        generate_scada(ieee14(), GeneratorConfig(hierarchy_level=10**9))
    # The boundary case — exactly one RTU per level — still generates.
    syn = generate_scada(ieee14(), GeneratorConfig(hierarchy_level=5))
    assert syn.network.fingerprint()


def test_ied_policy_matches_paper():
    """One IED per two flow measurements, one per injection."""
    syn = generate_scada(ieee14(), GeneratorConfig(seed=1))
    flows = sum(1 for m in syn.plan.measurements if m.mtype.is_flow)
    injections = syn.plan.num_measurements - flows
    expected_ieds = (flows + 1) // 2 + injections
    assert len(syn.network.ied_ids) == expected_ieds


def test_every_measurement_assigned_exactly_once():
    syn = generate_scada(ieee14(), GeneratorConfig(seed=2))
    assigned = syn.network.assigned_measurements()
    assert assigned == syn.plan.indices()


def test_all_ieds_reach_mtu():
    syn = generate_scada(ieee14(), GeneratorConfig(seed=3,
                                                   hierarchy_level=3))
    for ied in syn.network.ied_ids:
        assert syn.network.forwarding_paths(ied), ied


def test_determinism():
    a = generate_scada(ieee14(), GeneratorConfig(seed=7))
    b = generate_scada(ieee14(), GeneratorConfig(seed=7))
    assert [l.node_pair for l in a.network.topology.links] == \
           [l.node_pair for l in b.network.topology.links]
    assert a.network.pair_security == b.network.pair_security


def test_seed_changes_network():
    a = generate_scada(ieee14(), GeneratorConfig(seed=1))
    b = generate_scada(ieee14(), GeneratorConfig(seed=2))
    assert [l.node_pair for l in a.network.topology.links] != \
           [l.node_pair for l in b.network.topology.links]


def test_hierarchy_increases_depth():
    flat = generate_scada(ieee14(), GeneratorConfig(seed=4,
                                                    hierarchy_level=1))
    deep = generate_scada(ieee14(), GeneratorConfig(seed=4,
                                                    hierarchy_level=3))

    def mean_path_len(syn):
        lengths = [len(syn.network.forwarding_paths(i)[0])
                   for i in syn.network.ied_ids]
        return sum(lengths) / len(lengths)

    assert mean_path_len(deep) > mean_path_len(flat)


def test_secure_fraction_extremes():
    locked = generate_scada(ieee14(), GeneratorConfig(seed=5,
                                                      secure_fraction=1.0))
    for ied in locked.network.ied_ids:
        assert locked.network.secured_paths(ied), ied
    open_ = generate_scada(ieee14(), GeneratorConfig(seed=5,
                                                     secure_fraction=0.0))
    secured = [i for i in open_.network.ied_ids
               if open_.network.secured_paths(i)]
    assert not secured


def test_device_count_scales_with_buses():
    small = generate_scada(ieee14(), GeneratorConfig(seed=1))
    big = generate_scada(case30(), GeneratorConfig(seed=1))
    assert big.num_devices > small.num_devices


def test_problem_builds_from_generated_table():
    syn = generate_scada(ieee14(), GeneratorConfig(seed=6))
    problem = ObservabilityProblem.from_table(syn.table)
    assert problem.num_states == 14
    assert problem.num_measurements == syn.plan.num_measurements


def test_dual_homing_adds_redundant_paths():
    from repro.scada import GeneratorConfig, generate_scada
    from repro.grid import ieee14
    single = generate_scada(ieee14(), GeneratorConfig(seed=9))
    dual = generate_scada(ieee14(), GeneratorConfig(
        seed=9, dual_home_fraction=1.0))
    single_paths = sum(len(single.network.forwarding_paths(i))
                       for i in single.network.ied_ids)
    dual_paths = sum(len(dual.network.forwarding_paths(i))
                     for i in dual.network.ied_ids)
    assert dual_paths > single_paths


def test_dual_home_fraction_validated():
    import pytest
    from repro.scada import GeneratorConfig
    with pytest.raises(ValueError):
        GeneratorConfig(dual_home_fraction=2.0)
