"""Topology: links, reachability, path enumeration."""

import pytest

from repro.scada import Link, Topology, logical_hops


def _diamond():
    """1 - {2,3} - 4 diamond."""
    links = [Link(1, 1, 2), Link(2, 1, 3), Link(3, 2, 4), Link(4, 3, 4)]
    return Topology([1, 2, 3, 4], links)


def test_link_validation():
    with pytest.raises(ValueError):
        Link(1, 2, 2)


def test_link_other_end():
    link = Link(1, 3, 7)
    assert link.other_end(3) == 7
    assert link.other_end(7) == 3
    with pytest.raises(ValueError):
        link.other_end(9)


def test_duplicate_link_index_rejected():
    with pytest.raises(ValueError):
        Topology([1, 2, 3], [Link(1, 1, 2), Link(1, 2, 3)])


def test_parallel_link_rejected():
    with pytest.raises(ValueError):
        Topology([1, 2], [Link(1, 1, 2), Link(2, 2, 1)])


def test_unknown_device_rejected():
    with pytest.raises(ValueError):
        Topology([1, 2], [Link(1, 1, 9)])


def test_neighbors_skip_down_links():
    links = [Link(1, 1, 2), Link(2, 1, 3, up=False)]
    topology = Topology([1, 2, 3], links)
    assert topology.neighbors(1) == [2]


def test_reachability():
    topology = _diamond()
    assert topology.reachable(1, 4)
    assert topology.reachable(4, 1)
    assert topology.reachable(1, 1)
    isolated = Topology([1, 2, 3], [Link(1, 1, 2)])
    assert not isolated.reachable(1, 3)


def test_simple_paths_diamond():
    topology = _diamond()
    paths = topology.simple_paths(1, 4)
    assert sorted(paths) == [[1, 2, 4], [1, 3, 4]]


def test_simple_paths_same_node():
    assert _diamond().simple_paths(2, 2) == [[2]]


def test_simple_paths_cap():
    # Complete graph on 7 nodes has many paths; cap must trigger.
    n = 7
    links = []
    idx = 0
    for a in range(1, n + 1):
        for b in range(a + 1, n + 1):
            idx += 1
            links.append(Link(idx, a, b))
    topology = Topology(range(1, n + 1), links)
    with pytest.raises(RuntimeError):
        topology.simple_paths(1, n, max_paths=10)


def test_link_between():
    topology = _diamond()
    assert topology.link_between(1, 2).index == 1
    with pytest.raises(KeyError):
        topology.link_between(2, 3)


def test_logical_hops_skip_routers():
    path = [1, 9, 14, 13]
    assert logical_hops(path, {14}) == [(1, 9), (9, 13)]
    assert logical_hops(path, set()) == [(1, 9), (9, 14), (14, 13)]
    assert logical_hops([1], set()) == []


def test_no_transit_blocks_intermediate_hops():
    links = [Link(1, 1, 2), Link(2, 2, 3), Link(3, 1, 4), Link(4, 4, 3)]
    topology = Topology([1, 2, 3, 4], links)
    all_paths = topology.simple_paths(1, 3)
    assert len(all_paths) == 2
    restricted = topology.simple_paths(1, 3, no_transit={4})
    assert restricted == [[1, 2, 3]]


def test_no_transit_allows_endpoints():
    links = [Link(1, 1, 2), Link(2, 2, 3)]
    topology = Topology([1, 2, 3], links)
    assert topology.simple_paths(1, 3, no_transit={1, 3}) == [[1, 2, 3]]


def test_max_length_bounds_paths():
    links = [Link(1, 1, 2), Link(2, 2, 4), Link(3, 1, 3), Link(4, 3, 5),
             Link(5, 5, 4)]
    topology = Topology([1, 2, 3, 4, 5], links)
    all_paths = topology.simple_paths(1, 4)
    assert sorted(map(len, all_paths)) == [3, 4]
    short = topology.simple_paths(1, 4, max_length=3)
    assert short == [[1, 2, 4]]
