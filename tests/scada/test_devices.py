"""Device model."""

import pytest

from repro.scada import CryptoProfile, Device, DeviceType, make_device


def test_crypto_profile_parse():
    profile = CryptoProfile.parse("HMAC 128")
    assert profile.algorithm == "hmac"
    assert profile.key_bits == 128


def test_crypto_profile_parse_many():
    profiles = CryptoProfile.parse_many("chap 64 sha2 128")
    assert len(profiles) == 2
    assert profiles[1] == CryptoProfile("sha2", 128)


def test_crypto_profile_parse_errors():
    with pytest.raises(ValueError):
        CryptoProfile.parse("hmac")
    with pytest.raises(ValueError):
        CryptoProfile.parse_many("chap 64 sha2")
    with pytest.raises(ValueError):
        CryptoProfile("aes", -1)


def test_crypto_profile_str_roundtrip():
    profile = CryptoProfile("rsa", 2048)
    assert CryptoProfile.parse(str(profile)) == profile


def test_device_type_predicates():
    assert DeviceType.IED.is_field_device
    assert DeviceType.RTU.is_field_device
    assert not DeviceType.MTU.is_field_device
    assert not DeviceType.ROUTER.is_field_device


def test_device_properties():
    ied = Device(1, DeviceType.IED)
    assert ied.is_ied and ied.is_field_device
    assert not ied.is_mtu
    assert ied.label == "IED 1"


def test_device_protocols_lowercased():
    device = make_device(1, DeviceType.RTU, protocols=["DNP3", "Modbus"])
    assert device.protocols == frozenset({"dnp3", "modbus"})


def test_device_id_validation():
    with pytest.raises(ValueError):
        Device(0, DeviceType.IED)


def test_named_device_label():
    device = make_device(5, DeviceType.MTU, name="control-center")
    assert device.label == "control-center"
