"""Hypothesis invariants of the synthetic SCADA generator."""

from hypothesis import given, settings, strategies as st

from repro.core import ObservabilityProblem
from repro.grid import ieee14
from repro.scada import GeneratorConfig, generate_scada


@given(
    fraction=st.floats(min_value=0.3, max_value=1.0),
    hierarchy=st.integers(min_value=1, max_value=4),
    secure=st.floats(min_value=0.0, max_value=1.0),
    dual=st.floats(min_value=0.0, max_value=1.0),
    seed=st.integers(min_value=0, max_value=50),
)
@settings(max_examples=40, deadline=None)
def test_generated_systems_are_well_formed(fraction, hierarchy, secure,
                                           dual, seed):
    config = GeneratorConfig(
        measurement_fraction=fraction,
        hierarchy_level=hierarchy,
        secure_fraction=secure,
        dual_home_fraction=dual,
        seed=seed,
    )
    synthetic = generate_scada(ieee14(), config)
    network = synthetic.network

    # Structural invariants.
    assert network.mtu_id  # exactly one MTU (validated on construction)
    assert network.assigned_measurements() == synthetic.plan.indices()
    for ied in network.ied_ids:
        paths = network.forwarding_paths(ied)
        assert paths, f"IED {ied} cannot reach the MTU"
        for path in paths:
            assert path[0] == ied and path[-1] == network.mtu_id
            # No other IED serves as a transit hop.
            assert not (set(path[1:-1]) & set(network.ied_ids))

    # Every pair with a security entry is an actual communicating pair
    # (it lies on some logical hop of some path).
    hops = set()
    routers = network.router_ids
    for device in network.field_device_ids:
        for path in network.forwarding_paths(device):
            nodes = [d for d in path if d not in routers]
            hops.update((min(a, b), max(a, b))
                        for a, b in zip(nodes, nodes[1:]))
    for pair in network.pair_security:
        assert pair in hops, pair

    # The derived observability problem is self-consistent.
    problem = ObservabilityProblem.from_table(synthetic.table)
    assert problem.num_states == 14
    grouped = sorted(z for group in problem.unique_groups for z in group)
    assert grouped == synthetic.plan.indices()
