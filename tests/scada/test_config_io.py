"""Configuration file parsing and serialization."""

import pytest

from repro.core import ObservabilityProblem, Property
from repro.scada import (
    CaseConfig,
    GeneratorConfig,
    dump_config,
    generate_scada,
    parse_config,
)
from repro.scada.config_io import ConfigError
from repro.grid import ieee14

MINIMAL = """
[system]
states = 2

[jacobian]
1.5 0
0 -2.5

[devices]
ied = 1 2
rtu = 3
mtu = 4

[links]
1 3
2 3
3 4

[measurements]
1: 1
2: 2

[security]
1 3: chap 64 sha2 128

[requirements]
property = observability
k = 1
"""


def test_parse_minimal():
    config = parse_config(MINIMAL)
    assert config.problem.num_states == 2
    assert config.network.ied_ids == [1, 2]
    assert config.network.mtu_id == 4
    assert config.spec is not None
    assert config.spec.budget.k == 1


def test_parse_id_ranges():
    text = MINIMAL.replace("ied = 1 2", "ied = 1-2")
    config = parse_config(text)
    assert config.network.ied_ids == [1, 2]


def test_split_budget_requirements():
    text = MINIMAL.replace("k = 1", "k1 = 2\nk2 = 1").replace(
        "property = observability", "property = secured-observability")
    config = parse_config(text)
    assert config.spec.property is Property.SECURED_OBSERVABILITY
    assert config.spec.budget.k1 == 2
    assert config.spec.budget.k2 == 1


def test_requirements_optional():
    text = MINIMAL[:MINIMAL.index("[requirements]")]
    config = parse_config(text)
    assert config.spec is None


def test_errors():
    with pytest.raises(ConfigError):
        parse_config("stray content")
    with pytest.raises(ConfigError):
        parse_config("[bogus]\n")
    with pytest.raises(ConfigError):
        parse_config("[system]\nstates = 2\n[jacobian]\n1 2 3\n")
    with pytest.raises(ConfigError):
        parse_config("[system]\nfoo = 2\n")
    with pytest.raises(ConfigError):
        parse_config(MINIMAL.replace("property = observability",
                                     "property = bogus"))
    with pytest.raises(ConfigError):
        parse_config(MINIMAL.replace("1 3: chap 64 sha2 128",
                                     "1: chap 64"))


def test_comments_and_blanks_ignored():
    text = "# leading comment\n" + MINIMAL.replace(
        "[links]", "[links]\n# the links")
    config = parse_config(text)
    assert len(config.network.topology.links) == 3


def test_roundtrip_through_dump():
    config = parse_config(MINIMAL)
    text = dump_config(config)
    back = parse_config(text)
    assert back.network.ied_ids == config.network.ied_ids
    assert back.problem.num_states == config.problem.num_states
    assert back.spec.budget.describe() == config.spec.budget.describe()
    assert back.network.pair_security == config.network.pair_security


def test_roundtrip_generated_system():
    syn = generate_scada(ieee14(), GeneratorConfig(seed=8))
    problem = ObservabilityProblem.from_table(syn.table)
    case = CaseConfig(network=syn.network, problem=problem, spec=None)
    text = dump_config(case, rows=syn.table.rows)
    back = parse_config(text)
    assert back.problem.num_states == problem.num_states
    assert back.problem.num_measurements == problem.num_measurements
    assert sorted(back.network.measurement_map) == \
           sorted(syn.network.measurement_map)
    # Unique grouping from numeric rows must match the taxonomy-derived
    # grouping of the generator.
    assert sorted(map(tuple, back.problem.unique_groups)) == \
           sorted(map(tuple, problem.unique_groups))


def test_load_config(tmp_path):
    from repro.scada import load_config
    path = tmp_path / "case.scada"
    path.write_text(MINIMAL)
    config = load_config(str(path))
    assert config.network.mtu_id == 4
