"""Crypto strength policy (the Authenticated/IntegrityProtected rules)."""

import pytest

from repro.scada import CryptoPolicy, CryptoProfile, DEFAULT_POLICY


def P(text):
    return CryptoProfile.parse(text)


def test_hmac_128_authenticates_but_no_integrity():
    # The §III-D example: "hmac 128" pairs are authenticated yet the
    # transmission is not integrity protected.
    assert DEFAULT_POLICY.profile_authenticates(P("hmac 128"))
    assert not DEFAULT_POLICY.profile_protects_integrity(P("hmac 128"))


def test_chap_authenticates_only():
    assert DEFAULT_POLICY.profile_authenticates(P("chap 64"))
    assert not DEFAULT_POLICY.profile_protects_integrity(P("chap 64"))


def test_sha2_protects_integrity():
    assert DEFAULT_POLICY.profile_protects_integrity(P("sha2 128"))
    assert DEFAULT_POLICY.profile_protects_integrity(P("sha256 256"))


def test_key_length_thresholds():
    assert not DEFAULT_POLICY.profile_authenticates(P("hmac 64"))
    assert not DEFAULT_POLICY.profile_authenticates(P("rsa 1024"))
    assert DEFAULT_POLICY.profile_authenticates(P("rsa 2048"))
    assert not DEFAULT_POLICY.profile_protects_integrity(P("sha2 64"))


def test_broken_algorithms_never_count():
    # DES is explicitly called out as broken in the paper.
    assert not DEFAULT_POLICY.profile_authenticates(P("des 256"))
    assert not DEFAULT_POLICY.profile_protects_integrity(P("des 256"))
    assert not DEFAULT_POLICY.profile_protects_integrity(P("md5 128"))


def test_aes_256_is_authenticated_encryption():
    assert DEFAULT_POLICY.profile_authenticates(P("aes 256"))
    assert DEFAULT_POLICY.profile_protects_integrity(P("aes 256"))


def test_secured_requires_both():
    secured_pair = CryptoProfile.parse_many("chap 64 sha2 128")
    assert DEFAULT_POLICY.secured(secured_pair)
    auth_only = CryptoProfile.parse_many("hmac 128")
    assert not DEFAULT_POLICY.secured(auth_only)
    integrity_only = CryptoProfile.parse_many("sha999 0")
    assert not DEFAULT_POLICY.secured(integrity_only)
    assert not DEFAULT_POLICY.secured(())


def test_shared_profiles_intersection():
    left = CryptoProfile.parse_many("hmac 128 sha2 256")
    right = CryptoProfile.parse_many("sha2 256 rsa 2048")
    shared = DEFAULT_POLICY.shared_profiles(left, right)
    assert shared == (CryptoProfile("sha2", 256),)


def test_custom_policy():
    policy = CryptoPolicy(
        authentication_rules={"toy": 1},
        integrity_rules={"toy": 10},
        broken=["bad"],
    )
    assert policy.authenticated([P("toy 1")])
    assert not policy.integrity_protected([P("toy 1")])
    assert policy.integrity_protected([P("toy 10")])
    assert not policy.authenticated([P("bad 100")])


def test_unknown_algorithm_counts_for_nothing():
    assert not DEFAULT_POLICY.authenticated([P("rot13 9000")])
