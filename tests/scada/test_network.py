"""The ScadaNetwork container and its static predicates."""

import pytest

from repro.scada import (
    CryptoProfile,
    Device,
    DeviceType,
    Link,
    ScadaNetwork,
    make_device,
)


def _network(**overrides):
    kwargs = dict(
        devices=[
            Device(1, DeviceType.IED),
            Device(2, DeviceType.RTU),
            Device(3, DeviceType.ROUTER),
            Device(4, DeviceType.MTU),
        ],
        links=[Link(1, 1, 2), Link(2, 2, 3), Link(3, 3, 4)],
        measurement_map={1: [1, 2]},
        pair_security={
            (1, 2): CryptoProfile.parse_many("chap 64 sha2 128"),
            (2, 4): CryptoProfile.parse_many("rsa 2048 aes 256"),
        },
    )
    kwargs.update(overrides)
    return ScadaNetwork(**kwargs)


def test_device_views():
    network = _network()
    assert network.ied_ids == [1]
    assert network.rtu_ids == [2]
    assert network.router_ids == {3}
    assert network.mtu_id == 4
    assert network.field_device_ids == [1, 2]


def test_at_least_one_mtu_required():
    with pytest.raises(ValueError):
        _network(devices=[Device(1, DeviceType.IED),
                          Device(2, DeviceType.RTU)])


def test_multiple_mtus_pick_a_main():
    # §III-B: several MTUs are allowed; one acts as the main MTU.
    network = _network(devices=[Device(1, DeviceType.IED),
                                Device(2, DeviceType.RTU),
                                Device(3, DeviceType.MTU),
                                Device(4, DeviceType.MTU)])
    assert network.mtu_id == 3
    assert network.mtu_ids == [3, 4]


def test_duplicate_device_rejected():
    with pytest.raises(ValueError):
        _network(devices=[Device(1, DeviceType.IED),
                          Device(1, DeviceType.RTU),
                          Device(4, DeviceType.MTU)])


def test_measurement_map_validation():
    with pytest.raises(ValueError):
        _network(measurement_map={2: [1]})  # RTU can't carry measurements
    with pytest.raises(ValueError):
        _network(measurement_map={99: [1]})


def test_measurement_assigned_once():
    devices = [Device(1, DeviceType.IED), Device(5, DeviceType.IED),
               Device(2, DeviceType.RTU), Device(4, DeviceType.MTU)]
    links = [Link(1, 1, 2), Link(2, 5, 2), Link(3, 2, 4)]
    with pytest.raises(ValueError):
        ScadaNetwork(devices=devices, links=links,
                     measurement_map={1: [1], 5: [1]})


def test_measurement_lookup():
    network = _network()
    assert network.measurements_of(1) == [1, 2]
    assert network.ied_of_measurement(2) == 1
    with pytest.raises(KeyError):
        network.ied_of_measurement(99)
    assert network.assigned_measurements() == [1, 2]


def test_comm_proto_pairing_defaults():
    network = _network()
    assert network.comm_proto_pairing(1, 2)  # both default dnp3


def test_comm_proto_mismatch_blocks_assured():
    devices = [
        make_device(1, DeviceType.IED, protocols=["modbus"]),
        make_device(2, DeviceType.RTU, protocols=["dnp3"]),
        Device(3, DeviceType.ROUTER),
        Device(4, DeviceType.MTU),
    ]
    network = _network(devices=devices)
    assert not network.comm_proto_pairing(1, 2)
    assert not network.hop_assured(1, 2)
    assert network.assured_paths(1) == []


def test_pair_security_beats_device_intersection():
    network = _network()
    profiles = network.security_profiles(1, 2)
    assert CryptoProfile("sha2", 128) in profiles


def test_device_level_crypto_intersection():
    shared = CryptoProfile("sha2", 256)
    devices = [
        make_device(1, DeviceType.IED, crypto=[shared,
                                               CryptoProfile("hmac", 128)]),
        make_device(2, DeviceType.RTU, crypto=[shared]),
        Device(3, DeviceType.ROUTER),
        Device(4, DeviceType.MTU),
    ]
    network = _network(devices=devices, pair_security={})
    assert network.security_profiles(1, 2) == (shared,)


def test_crypto_pairing_mismatch():
    devices = [
        make_device(1, DeviceType.IED, crypto=[CryptoProfile("hmac", 128)]),
        make_device(2, DeviceType.RTU, crypto=[CryptoProfile("rsa", 2048)]),
        Device(3, DeviceType.ROUTER),
        Device(4, DeviceType.MTU),
    ]
    network = _network(devices=devices, pair_security={})
    assert not network.crypto_pairing_ok(1, 2)
    # With no crypto requirements at all, pairing trivially succeeds.
    bare = _network(pair_security={})
    assert bare.crypto_pairing_ok(1, 2)


def test_hop_security_predicates():
    network = _network()
    assert network.hop_authenticated(1, 2)   # chap
    assert network.hop_integrity_protected(1, 2)  # sha2 128
    assert network.hop_secured(1, 2)
    assert network.hop_secured(2, 4)


def test_paths_route_through_router():
    network = _network()
    assert network.forwarding_paths(1) == [[1, 2, 3, 4]]
    assert network.assured_paths(1) == [[1, 2, 3, 4]]
    # The (2, 4) profile covers the logical hop across the router.
    assert network.secured_paths(1) == [[1, 2, 3, 4]]


def test_unsecured_hop_removes_secured_path():
    network = _network(pair_security={
        (1, 2): CryptoProfile.parse_many("hmac 128"),  # auth only
        (2, 4): CryptoProfile.parse_many("rsa 2048 aes 256"),
    })
    assert network.assured_paths(1) == [[1, 2, 3, 4]]
    assert network.secured_paths(1) == []


def test_security_reference_unknown_device():
    with pytest.raises(ValueError):
        _network(pair_security={(1, 99): ()})


def test_ieds_never_forward_traffic():
    """A dual-homed IED must not appear inside another IED's path."""
    devices = [
        Device(1, DeviceType.IED),
        Device(2, DeviceType.IED),
        Device(3, DeviceType.RTU),
        Device(5, DeviceType.RTU),
        Device(4, DeviceType.MTU),
    ]
    links = [Link(1, 1, 3), Link(2, 2, 3), Link(3, 2, 5),
             Link(4, 3, 4), Link(5, 5, 4)]
    network = ScadaNetwork(devices=devices, links=links,
                           measurement_map={1: [1], 2: [2]})
    for path in network.forwarding_paths(1):
        assert 2 not in path
    # IED 2 itself still uses both of its uplinks.
    assert len(network.forwarding_paths(2)) == 2
