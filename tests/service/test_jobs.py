"""Job layer: coalescing, bounded admission, cancellation, tenants.

These tests drive :class:`JobManager` directly on a local event loop
with stub runners — no HTTP, no real solver — so each policy is
exercised in isolation.
"""

import asyncio

import pytest

from repro.obs.metrics import MetricsRegistry
from repro.sat.limits import Limits
from repro.service.executor import ExecutorBridge
from repro.service.jobs import JobManager, JobOutcome, TenantPolicy
from repro.service.protocol import JobKind, JobState, ServiceError


def run(coro):
    return asyncio.run(coro)


def make_manager(**kwargs):
    bridge = ExecutorBridge(jobs=2)
    registry = MetricsRegistry()
    return JobManager(bridge, registry, **kwargs), registry, bridge


def instant(payload=None):
    async def runner():
        return JobOutcome(payload=dict(payload or {"exit_code": 0}))
    return runner


def gated(gate: "asyncio.Event", payload=None):
    async def runner():
        await gate.wait()
        return JobOutcome(payload=dict(payload or {"exit_code": 0}))
    return runner


def test_identical_keys_coalesce_to_one_job():
    async def scenario():
        manager, registry, bridge = make_manager()
        gate = asyncio.Event()
        first, coalesced_a = manager.submit(
            JobKind.VERIFY, gated(gate), key=("s", "k1"))
        twin, coalesced_b = manager.submit(
            JobKind.VERIFY, instant(), key=("s", "k1"))
        other, coalesced_c = manager.submit(
            JobKind.VERIFY, gated(gate), key=("s", "k2"))
        assert twin is first
        assert other is not first
        assert (coalesced_a, coalesced_b, coalesced_c) == (
            False, True, False)
        assert first.coalesced == 1
        assert registry.counters["service.coalesce.hits"] == 1
        assert registry.counters["service.jobs.submitted"] == 2
        gate.set()
        await asyncio.wait_for(first.done.wait(), 5)
        await asyncio.wait_for(other.done.wait(), 5)
        # A finished key no longer coalesces: same request solves anew.
        fresh, coalesced_d = manager.submit(
            JobKind.VERIFY, instant(), key=("s", "k1"))
        assert fresh is not first and not coalesced_d
        await asyncio.wait_for(fresh.done.wait(), 5)
        bridge.shutdown(wait=False)

    run(scenario())


def test_queue_limit_rejects_with_429():
    async def scenario():
        manager, registry, bridge = make_manager(queue_limit=2)
        gate = asyncio.Event()
        manager.submit(JobKind.VERIFY, gated(gate))
        manager.submit(JobKind.VERIFY, gated(gate))
        with pytest.raises(ServiceError) as err:
            manager.submit(JobKind.VERIFY, instant())
        assert err.value.status == 429
        assert err.value.code == "queue-full"
        assert registry.counters["service.jobs.rejected"] == 1
        gate.set()
        await manager.drain()
        bridge.shutdown(wait=False)

    run(scenario())


def test_tenant_quota_is_per_tenant():
    async def scenario():
        manager, _registry, bridge = make_manager(
            default_policy=TenantPolicy(max_pending=1))
        gate = asyncio.Event()
        manager.submit(JobKind.VERIFY, gated(gate), tenant="alice")
        with pytest.raises(ServiceError) as err:
            manager.submit(JobKind.VERIFY, gated(gate), tenant="alice")
        assert err.value.code == "tenant-queue-full"
        # A different tenant is unaffected by alice's backlog.
        manager.submit(JobKind.VERIFY, gated(gate), tenant="bob")
        gate.set()
        await manager.drain()
        bridge.shutdown(wait=False)

    run(scenario())


def test_tenant_policy_merges_budgets():
    policy = TenantPolicy(limits=Limits(max_time=2.0))
    assert policy.effective_limits(None) == Limits(max_time=2.0)
    merged = policy.effective_limits(
        Limits(max_time=5.0, max_conflicts=10))
    assert merged == Limits(max_time=2.0, max_conflicts=10)
    assert TenantPolicy().effective_limits(None) is None


def test_cancel_queued_job_never_runs():
    async def scenario():
        # One worker slot, held by a gated job: the second job queues.
        bridge = ExecutorBridge(jobs=1)
        manager = JobManager(bridge, MetricsRegistry())
        manager._slots = asyncio.Semaphore(1)
        gate = asyncio.Event()
        ran = []

        async def tracked():
            ran.append(True)
            return JobOutcome(payload={"exit_code": 0})

        blocker, _ = manager.submit(JobKind.VERIFY, gated(gate),
                                    spec_text="blocker")
        queued, _ = manager.submit(JobKind.VERIFY, tracked,
                                   spec_text="queued spec")
        await asyncio.sleep(0)
        manager.cancel(queued.job_id, reason="changed my mind")
        gate.set()
        await asyncio.wait_for(queued.done.wait(), 5)
        assert queued.state is JobState.CANCELLED
        assert not ran
        assert queued.result["exit_code"] == 3
        assert queued.result["limit_reason"] == "interrupt"
        assert queued.result["cancel_reason"] == "changed my mind"
        await asyncio.wait_for(blocker.done.wait(), 5)
        assert blocker.state is JobState.DONE
        bridge.shutdown(wait=False)

    run(scenario())


def test_cancel_running_job_fires_interrupt_hook():
    async def scenario():
        manager, _registry, bridge = make_manager()
        gate = asyncio.Event()
        calls = []

        async def runner():
            await gate.wait()
            # Simulates the engine returning UNKNOWN after interrupt.
            return JobOutcome(payload={"exit_code": 3,
                                       "limit_reason": "interrupt"})

        def interrupt():
            calls.append("interrupt")
            gate.set()

        job, _ = manager.submit(JobKind.VERIFY, runner,
                                interrupt=interrupt,
                                clear_interrupt=lambda:
                                calls.append("clear"))
        await asyncio.sleep(0.05)
        assert job.state is JobState.RUNNING
        manager.cancel(job.job_id, reason="test")
        await asyncio.wait_for(job.done.wait(), 5)
        assert calls == ["interrupt", "clear"]
        assert job.state is JobState.CANCELLED
        assert job.result["cancelled"] is True
        assert job.result["exit_code"] == 3
        bridge.shutdown(wait=False)

    run(scenario())


def test_failed_runner_marks_job_failed():
    async def scenario():
        manager, registry, bridge = make_manager()

        async def boom():
            raise RuntimeError("solver exploded")

        job, _ = manager.submit(JobKind.VERIFY, boom)
        await asyncio.wait_for(job.done.wait(), 5)
        assert job.state is JobState.FAILED
        assert "solver exploded" in (job.error or "")
        assert registry.counters["service.jobs.failed"] == 1
        # Even a crash before any telemetry still lands a solve-time
        # observation (the failed attempt occupied the pool).
        assert registry.histograms["service.solve_ms"].count == 1
        bridge.shutdown(wait=False)

    run(scenario())


def test_failed_job_keeps_trace_and_metrics():
    """Regression: the FAILED path used to zero ``trace_records`` and
    skip ``_absorb``, losing the partial trace and solver metrics."""
    from repro.obs import count, event
    from repro.obs.schema import validate_trace
    from repro.service.jobs import run_traced

    async def scenario():
        manager, registry, bridge = make_manager()
        mirrored = []
        manager.on_finish = lambda job: mirrored.append(
            (job.job_id, list(job.trace_records)))

        def body():
            event("encode.start", phase="test")
            count("stub.work", 3)
            raise RuntimeError("mid-solve crash")

        job, _ = manager.submit(
            JobKind.VERIFY,
            lambda: bridge.run(run_traced, {"kind": "verify"}, body))
        await asyncio.wait_for(job.done.wait(), 5)
        assert job.state is JobState.FAILED
        assert "mid-solve crash" in (job.error or "")
        # The partial trace survives, is schema-valid (meta first,
        # metrics last), and is what the trace endpoint would serve.
        assert job.trace_records
        assert validate_trace(job.trace_records) == []
        names = [r.get("name") for r in job.trace_records
                 if r.get("type") == "event"]
        assert "encode.start" in names
        # The body's metrics folded into the service registry.
        assert registry.counters.get("stub.work") == 3
        assert registry.histograms["service.solve_ms"].count == 1
        # The on_finish mirror saw the populated trace, not [].
        assert mirrored and mirrored[0][1] == job.trace_records
        bridge.shutdown(wait=False)

    run(scenario())


def test_fresh_submission_never_coalesces_onto_doomed_leader():
    """Regression: a twin with ``cancel_requested`` used to absorb new
    submissions, handing them a cancelled verdict they never asked
    for."""
    async def scenario():
        manager, _registry, bridge = make_manager()
        gate = asyncio.Event()
        leader, _ = manager.submit(JobKind.VERIFY, gated(gate),
                                   key=("s", "k"))
        await asyncio.sleep(0.05)
        manager.cancel(leader.job_id, reason="test")
        fresh, coalesced = manager.submit(
            JobKind.VERIFY, gated(gate), key=("s", "k"))
        assert fresh is not leader and not coalesced
        gate.set()
        await asyncio.wait_for(fresh.done.wait(), 5)
        assert fresh.state is JobState.DONE
        await manager.drain()
        bridge.shutdown(wait=False)

    run(scenario())


def test_poll_follower_pins_wait_mode_leader():
    """Regression: coalescing used to only ever *set*
    ``cancel_on_disconnect``; a poll-mode follower now pins the job so
    the wait-mode leader's disconnect cannot cancel a solve whose
    result the follower still plans to fetch."""
    async def scenario():
        manager, _registry, bridge = make_manager()
        gate = asyncio.Event()
        leader, _ = manager.submit(JobKind.VERIFY, gated(gate),
                                   key=("s", "k"),
                                   cancel_on_disconnect=True)
        follower, coalesced = manager.submit(
            JobKind.VERIFY, gated(gate), key=("s", "k"),
            cancel_on_disconnect=False)
        assert coalesced and follower is leader
        assert not leader.cancel_on_disconnect
        manager.watcher_gone(leader)
        assert not leader.cancel_requested
        # And the converse: a wait-mode follower must not make a
        # poll-mode leader disconnect-cancellable.
        poll, _ = manager.submit(JobKind.VERIFY, gated(gate),
                                 key=("s", "k2"),
                                 cancel_on_disconnect=False)
        manager.submit(JobKind.VERIFY, gated(gate), key=("s", "k2"),
                       cancel_on_disconnect=True)
        assert not poll.cancel_on_disconnect
        manager.watcher_gone(poll)
        assert not poll.cancel_requested
        gate.set()
        await manager.drain()
        bridge.shutdown(wait=False)

    run(scenario())


def test_cancel_and_watcher_gone_after_finish_are_noops():
    async def scenario():
        manager, registry, bridge = make_manager()
        job, _ = manager.submit(JobKind.VERIFY, instant(),
                                cancel_on_disconnect=True)
        await asyncio.wait_for(job.done.wait(), 5)
        assert job.state is JobState.DONE
        same = manager.cancel(job.job_id, reason="too late")
        assert same.state is JobState.DONE
        assert not job.cancel_requested
        manager.watcher_gone(job)
        assert not job.cancel_requested
        assert "service.jobs.cancel_requests" not in registry.counters
        bridge.shutdown(wait=False)

    run(scenario())


def test_queue_wait_accounting():
    async def scenario():
        # One slot: the second job measurably queues behind the first.
        bridge = ExecutorBridge(jobs=1)
        manager = JobManager(bridge, MetricsRegistry())
        manager._slots = asyncio.Semaphore(1)
        registry = manager.registry
        gate = asyncio.Event()
        blocker, _ = manager.submit(JobKind.VERIFY, gated(gate))
        queued, _ = manager.submit(JobKind.VERIFY, instant())
        await asyncio.sleep(0.05)
        gate.set()
        await asyncio.wait_for(queued.done.wait(), 5)
        hist = registry.histograms["service.queue_wait_ms"]
        assert hist.count == 2
        # The queued job waited at least as long as the sleep above.
        assert hist.high is not None and hist.high >= 40.0
        info = queued.describe()
        assert info["queued_s"] >= 0.04
        # age_s of a finished job is frozen at the finish stamp.
        await asyncio.sleep(0.05)
        assert queued.describe()["age_s"] == info["age_s"]
        await asyncio.wait_for(blocker.done.wait(), 5)
        bridge.shutdown(wait=False)

    run(scenario())


def test_session_locks_are_released_after_last_job():
    async def scenario():
        manager, _registry, bridge = make_manager()
        gate = asyncio.Event()
        first, _ = manager.submit(JobKind.VERIFY, gated(gate),
                                  session_id="sess-a")
        second, _ = manager.submit(JobKind.VERIFY, gated(gate),
                                   session_id="sess-a")
        await asyncio.sleep(0.05)
        assert "sess-a" in manager._session_locks
        gate.set()
        await asyncio.wait_for(first.done.wait(), 5)
        await asyncio.wait_for(second.done.wait(), 5)
        assert "sess-a" not in manager._session_locks
        bridge.shutdown(wait=False)

    run(scenario())


def test_history_trim_keeps_unfinished_jobs():
    async def scenario():
        manager, _registry, bridge = make_manager(history=3)
        jobs = []
        for _ in range(6):
            job, _ = manager.submit(JobKind.VERIFY, instant())
            jobs.append(job)
            await asyncio.wait_for(job.done.wait(), 5)
        assert len(manager.jobs()) <= 3
        # The most recent job is always still addressable.
        assert manager.get(jobs[-1].job_id) is jobs[-1]
        with pytest.raises(ServiceError):
            manager.get(jobs[0].job_id)
        bridge.shutdown(wait=False)

    run(scenario())


def test_watcher_gone_only_cancels_opted_in_jobs():
    async def scenario():
        manager, _registry, bridge = make_manager()
        gate = asyncio.Event()
        poll, _ = manager.submit(JobKind.VERIFY, gated(gate),
                                 cancel_on_disconnect=False)
        manager.watcher_gone(poll)
        assert not poll.cancel_requested
        waiting, _ = manager.submit(JobKind.VERIFY, gated(gate),
                                    cancel_on_disconnect=True)
        manager.watcher_gone(waiting)
        assert waiting.cancel_requested
        gate.set()
        await manager.drain()
        bridge.shutdown(wait=False)

    run(scenario())
