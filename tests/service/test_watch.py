"""End-to-end tests for the service's live-watch endpoints."""

from __future__ import annotations

import json
import threading
import time

import pytest

from repro.cases import fig3_network
from repro.obs.schema import validate_trace
from repro.service import ServiceClientError
from repro.stream import ScenarioEmulator

FLOORS = [
    {"property": "observability", "k": 1},
    {"property": "secured-observability", "k": 1},
    {"property": "bad-data-detectability", "r": 1, "k": 1},
]


def _events(count, seed=3, start_seq=1):
    emulator = ScenarioEmulator(fig3_network(), seed=seed)
    records = [event.to_json() for event in emulator.events(count)]
    for offset, record in enumerate(records):
        record["seq"] = start_seq + offset
    return records


def test_watch_lifecycle(service, fig3_text):
    client = service.client
    opened = client.open_watch(config=fig3_text, floors=FLOORS)
    watch_id = opened["watch"]
    assert opened["info"]["floors"]
    assert opened["info"]["verdicts"]

    listed = client.watchers()
    assert any(w["watch"] == watch_id for w in listed["watchers"])

    result = client.send_events(watch_id, _events(6))
    assert result["applied"] == 6
    assert len(result["updates"]) == 6
    for update in result["updates"]:
        assert "latency_ms" in update

    status = client.watch_status(watch_id)
    assert status["ingests"] == 1
    assert status["events"] == 6

    alarms = client.alarms(watch_id)
    assert alarms["since"] == 0
    assert alarms["total"] == len(alarms["alarms"])

    closed = client.close_watch(watch_id)
    assert closed["closed"]
    with pytest.raises(ServiceClientError) as excinfo:
        client.watch_status(watch_id)
    assert excinfo.value.code == "no-such-watch"


def test_watch_trace_is_schema_valid(service, fig3_text):
    client = service.client
    watch_id = client.open_watch(
        config=fig3_text, floors=FLOORS)["watch"]
    client.send_events(watch_id, _events(4))
    records = [json.loads(line) for line in
               client.watch_trace(watch_id).splitlines() if line]
    assert records, "trace is empty"
    assert validate_trace(records) == []
    assert records[0]["type"] == "meta"
    assert records[-1]["type"] == "metrics"


def test_watch_over_session(service, fig3_text):
    client = service.client
    session_id = client.open_session(fig3_text)["session"]
    watch_id = client.open_watch(
        session=session_id, floors=FLOORS)["watch"]
    assert client.watch_status(watch_id)["session"] == session_id
    client.send_events(watch_id, _events(2))


def test_watch_error_paths(service, fig3_text):
    client = service.client
    with pytest.raises(ServiceClientError) as excinfo:
        client.open_watch(config="not a config", floors=FLOORS)
    assert excinfo.value.status == 400

    with pytest.raises(ServiceClientError) as excinfo:
        client.open_watch(config=fig3_text,
                          floors=[{"property": "haunted"}])
    assert excinfo.value.code == "bad-spec"

    watch_id = client.open_watch(
        config=fig3_text, floors=FLOORS)["watch"]
    with pytest.raises(ServiceClientError) as excinfo:
        client.send_events(watch_id, [{"kind": "meteor-strike"}])
    assert excinfo.value.code == "bad-events"
    with pytest.raises(ServiceClientError) as excinfo:
        client.send_events(watch_id, [])
    assert excinfo.value.status == 400
    # A semantically-invalid event (unknown device) is a 422.
    with pytest.raises(ServiceClientError) as excinfo:
        client.send_events(watch_id, [
            {"seq": 1, "time": 0.0, "kind": "device-failure",
             "devices": [424242]}])
    assert excinfo.value.status == 422

    with pytest.raises(ServiceClientError) as excinfo:
        client.send_events("w999999", _events(1))
    assert excinfo.value.code == "no-such-watch"


def test_watch_pool_is_bounded(running, fig3_text):
    box = running(max_watchers=1)
    client = box.client
    client.open_watch(config=fig3_text, floors=FLOORS)
    with pytest.raises(ServiceClientError) as excinfo:
        client.open_watch(config=fig3_text, floors=FLOORS)
    assert excinfo.value.status == 429
    assert excinfo.value.code == "too-many-watchers"


def test_closed_watch_rejects_events(service, fig3_text):
    client = service.client
    watch_id = client.open_watch(
        config=fig3_text, floors=FLOORS)["watch"]
    client.close_watch(watch_id)
    with pytest.raises(ServiceClientError) as excinfo:
        client.send_events(watch_id, _events(1))
    assert excinfo.value.code == "no-such-watch"


def test_long_poll_wakes_on_new_alarms(service, fig3_text):
    client = service.client
    opened = client.open_watch(config=fig3_text,
                               floors=[{"property": "observability",
                                        "k": 0}])
    watch_id = opened["watch"]
    floor = len(opened["alarms"])
    results = {}

    def poll():
        results["alarms"] = client.alarms(
            watch_id, since=floor, wait=True, timeout=30)

    waiter = threading.Thread(target=poll, daemon=True)
    waiter.start()
    time.sleep(0.2)
    assert waiter.is_alive(), "poll returned before any event arrived"
    # Failing every IED removes all measurements, which certainly
    # breaks 0-resilient observability and raises an alarm.
    ieds = sorted(fig3_network().ied_ids)
    client.send_events(watch_id, [
        {"seq": 1, "time": 0.0, "kind": "device-failure",
         "devices": ieds}])
    waiter.join(timeout=30)
    assert not waiter.is_alive(), "long poll never woke"
    assert results["alarms"]["alarms"], "woke without new alarms"


def test_metrics_expose_watcher_gauges(service, fig3_text):
    client = service.client
    client.open_watch(config=fig3_text, floors=FLOORS)
    gauges = client.metrics()["gauges"]
    assert gauges.get("service.watchers.open") == 1
