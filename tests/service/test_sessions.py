"""Session layer: fingerprint routing, LRU eviction, invalidation."""

import pytest

from repro.core import ResiliencySpec
from repro.service.protocol import ServiceError
from repro.service.sessions import SessionManager

from .conftest import fig3_config_text


@pytest.fixture
def manager():
    return SessionManager(maxsize=2)


def test_byte_different_configs_share_a_session(manager):
    text = fig3_config_text()
    noisy = "# a comment the parser ignores\n" + text + "\n\n"
    first, created_first = manager.open(manager.parse(text))
    second, created_second = manager.open(manager.parse(noisy))
    assert created_first and not created_second
    assert first is second
    assert manager.stats()["reused"] == 1


def test_warm_session_repeats_hit_the_encoding_cache(manager):
    session, _ = manager.open(manager.parse(fig3_config_text()))
    spec = ResiliencySpec.observability(k=1)
    session.engine.verify(spec, minimize=False)
    misses_after_first = session.engine.cache.misses
    session.engine.verify(spec, minimize=False)
    assert session.engine.cache.misses == misses_after_first
    assert session.engine.cache.hits >= 1


def test_lru_eviction_drops_contexts_cleanly(manager):
    text = fig3_config_text()
    base, _ = manager.open(manager.parse(text))
    base.engine.verify(ResiliencySpec.observability(k=1),
                       minimize=False)
    assert len(base.engine.cache) >= 1
    # Two more distinct sessions (different backends → different
    # fingerprints) overflow maxsize=2 and evict the oldest.
    manager.open(manager.parse(text), backend="incremental")
    manager.open(manager.parse(text), backend="fresh")
    assert manager.stats() == {"open": 2, "created": 3, "reused": 0,
                               "evicted": 1, "invalidated": 0}
    # The evicted session's warm contexts (live solvers) were released.
    assert len(base.engine.cache) == 0
    with pytest.raises(ServiceError) as err:
        manager.get(base.session_id)
    assert err.value.status == 404
    # Reopening the evicted configuration builds a fresh session.
    again, created = manager.open(manager.parse(text))
    assert created and again is not base


def test_invalidate_clears_and_forgets(manager):
    session, _ = manager.open(manager.parse(fig3_config_text()))
    session.engine.verify(ResiliencySpec.observability(k=1),
                          minimize=False)
    assert manager.invalidate(session.session_id) is True
    assert len(session.engine.cache) == 0
    assert manager.invalidate(session.session_id) is False
    assert manager.stats()["invalidated"] == 1


def test_parse_errors_are_client_errors(manager):
    with pytest.raises(ServiceError) as err:
        manager.parse("[system\nstates = banana")
    assert err.value.status == 400
    assert err.value.code == "bad-config"


def test_lint_failure_is_422(manager):
    # Mapping a measurement to an undeclared IED fails lint (SCADA001).
    text = fig3_config_text().replace("\n8: 8\n", "\n99: 8\n")
    assert text != fig3_config_text()
    with pytest.raises(ServiceError) as err:
        manager.open(manager.parse(text))
    assert err.value.status == 422
    assert err.value.code == "lint-failed"


def test_maxsize_must_be_positive():
    with pytest.raises(ValueError):
        SessionManager(maxsize=0)


def test_describe_reports_cumulative_solver_stats(manager):
    """GET /sessions accounting: lifetime solver effort per session."""
    session, _ = manager.open(manager.parse(fig3_config_text()))
    session.engine.verify(ResiliencySpec.observability(k=1),
                          minimize=False)
    session.engine.verify(ResiliencySpec.observability(k=2),
                          minimize=False)
    solver = session.describe()["solver"]
    assert solver["queries"] == 2
    assert isinstance(solver["queries"], int)
    assert solver["check_time"] >= 0.0
    assert solver["propagations"] > 0
    # Tier keys are last-seen gauges from the most recent check.
    assert {"tier_core", "tier_mid", "tier_local"} <= set(solver)
