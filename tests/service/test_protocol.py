"""Wire protocol: payload parsing, budget identity, result shaping."""

import pytest

from repro.core.results import Status
from repro.core.specs import Property
from repro.sat.limits import Limits
from repro.service.protocol import (
    ServiceError,
    cancelled_payload,
    limits_from_payload,
    limits_key,
    max_resiliency_payload,
    spec_from_payload,
    vectors_payload,
)
from repro.core.search import SearchBounds


def test_spec_defaults_to_observability():
    spec = spec_from_payload({"k": 2})
    assert spec.property is Property.OBSERVABILITY
    assert spec.budget.k == 2


def test_spec_split_budgets_and_property():
    spec = spec_from_payload({"property": "secured-observability",
                             "k1": 1, "k2": 2})
    assert spec.property is Property.SECURED_OBSERVABILITY
    assert (spec.budget.k1, spec.budget.k2) == (1, 2)


def test_spec_requires_some_budget():
    with pytest.raises(ServiceError) as err:
        spec_from_payload({})
    assert err.value.status == 400


@pytest.mark.parametrize("payload, fragment", [
    ({"property": "nope"}, "unknown property"),
    ({"k": -1}, "non-negative"),
    ({"k": "two"}, "non-negative"),
    ({"k": True}, "non-negative"),
])
def test_spec_rejects_malformed(payload, fragment):
    with pytest.raises(ServiceError) as err:
        spec_from_payload(payload)
    assert err.value.status == 400
    assert fragment in err.value.message


def test_limits_parsing_and_identity():
    assert limits_from_payload(None) is None
    assert limits_from_payload({}) is None
    limits = limits_from_payload({"max_time": 1.5, "max_conflicts": 10})
    assert limits == Limits(max_time=1.5, max_conflicts=10)
    # coalescing identity: equal budgets share, distinct budgets don't
    assert limits_key(limits) == limits_key(
        Limits(max_time=1.5, max_conflicts=10))
    assert limits_key(limits) != limits_key(Limits(max_time=1.5))
    assert limits_key(None) != limits_key(limits)


def test_limits_rejects_unknown_and_negative():
    with pytest.raises(ServiceError):
        limits_from_payload({"max_tiem": 1})
    with pytest.raises(ServiceError):
        limits_from_payload({"max_time": -3})


def test_cancelled_payload_is_exit_code_3_unknown():
    payload = cancelled_payload("1-resilient observability",
                                "client-disconnect")
    assert payload["exit_code"] == 3
    assert payload["status"] == Status.UNKNOWN.value
    assert payload["limit_reason"] == "interrupt"
    assert payload["cancelled"] is True


def test_vectors_payload_exit_codes():
    spec = spec_from_payload({"k": 1})
    assert vectors_payload(spec, [])["exit_code"] == 0
    incomplete = vectors_payload(spec, [], incomplete=True,
                                 limit_reason="time")
    assert incomplete["exit_code"] == 3
    assert incomplete["status"] == "incomplete"


def test_max_resiliency_payload_exactness():
    exact = SearchBounds(2, 2)
    loose = SearchBounds(1, 3, (2,))
    good = max_resiliency_payload("observability", exact, exact, exact)
    assert good["exit_code"] == 0 and good["status"] == "complete"
    bad = max_resiliency_payload("observability", exact, loose, exact)
    assert bad["exit_code"] == 3 and bad["limit_reason"] == "budget"
    assert bad["ied"]["unknown_budgets"] == [2]
