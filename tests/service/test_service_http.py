"""End-to-end daemon tests over real sockets.

Covers the PR's acceptance criteria: N identical concurrent POSTs run
exactly one solve (asserted through the observability counters), a
warm-session repeat query re-encodes nothing, a waiting client's
disconnect cooperatively interrupts the solve into the
exit-code-3-equivalent UNKNOWN payload, ``/metrics`` is a schema-valid
metrics record, and downloaded traces aggregate with ``repro stats``.
"""

import json
import socket
import threading
import time

import pytest

from repro.obs.schema import validate_record, validate_trace
from repro.obs.stats import aggregate
from repro.service import ServiceClientError

from .conftest import fig3_config_text


def _counters(client):
    return client.metrics()["counters"]


def test_health_index_and_metrics_schema(service):
    client = service.client
    health = client.health()
    assert health["ok"] is True and health["workers"] == 2
    metrics = client.metrics()
    assert validate_record(metrics) == []
    assert metrics["type"] == "metrics"
    index = client.request("GET", "/")
    assert "POST /verify" in index["endpoints"]


def test_warm_repeat_query_performs_zero_reencodes(service, fig3_text):
    client = service.client
    outcome = client.verify(config=fig3_text, spec={"k": 1}, wait=True)
    assert outcome["result"]["exit_code"] == 0
    first = _counters(client)
    outcome2 = client.verify(config=fig3_text, spec={"k": 1}, wait=True)
    assert outcome2["result"]["exit_code"] == 0
    second = _counters(client)
    # The repeat query re-encoded nothing: no new cache miss, no new
    # context build — it ran entirely against the warm session.
    assert second["cache.misses"] == first["cache.misses"]
    assert second.get("cache.hits", 0) > first.get("cache.hits", 0)
    sessions = client.sessions()
    assert sessions["stats"]["created"] == 1
    assert sessions["stats"]["reused"] >= 1


def test_concurrent_identical_posts_share_one_solve(running, fig3_text):
    import asyncio

    from repro.service.jobs import JobOutcome
    from repro.service.protocol import JobKind

    box = running(jobs=1)
    client = box.client
    # Prime the session so submissions race only on the solve, and
    # gate the single worker slot so every POST lands while the first
    # job is still pending — the deterministic coalescing window.
    client.open_session(fig3_text)

    async def inject_blocker():
        gate = asyncio.Event()

        async def runner():
            await gate.wait()
            return JobOutcome(payload={"exit_code": 0})

        box.service.jobs.submit(JobKind.VERIFY, runner,
                                spec_text="blocker")
        return gate

    gate = box.submit(inject_blocker()).result(timeout=5)
    deadline = time.time() + 10
    while time.time() < deadline:
        blockers = [j for j in client.jobs()["jobs"]
                    if j["spec"] == "blocker"]
        if blockers and blockers[0]["state"] == "running":
            break
        time.sleep(0.05)
    before = _counters(client)
    results = []
    errors = []

    def post():
        try:
            results.append(client.verify(config=fig3_text,
                                         spec={"k": 2}, wait=True))
        except Exception as exc:  # pragma: no cover - surfaced below
            errors.append(exc)

    threads = [threading.Thread(target=post) for _ in range(5)]
    for thread in threads:
        thread.start()
    deadline = time.time() + 10
    while time.time() < deadline:
        mine = [j for j in client.jobs()["jobs"]
                if j["spec"] == "2-resilient observability"]
        if mine and mine[0]["coalesced"] == 4:
            break
        time.sleep(0.05)
    box.loop.call_soon_threadsafe(gate.set)
    for thread in threads:
        thread.join(timeout=60)
    assert not errors
    after = _counters(client)
    job_ids = {r["job"] for r in results}
    assert len(job_ids) == 1, "identical requests must share one job"
    assert (after.get("service.solves", 0)
            - before.get("service.solves", 0)) == 1
    assert (after.get("service.coalesce.hits", 0)
            - before.get("service.coalesce.hits", 0)) == 4
    verdicts = {r["result"]["exit_code"] for r in results}
    assert verdicts == {0} or verdicts == {1}


def test_different_budgets_do_not_coalesce(service, fig3_text):
    client = service.client
    done = client.verify(config=fig3_text, spec={"k": 1}, wait=True)
    limited = client.verify(config=fig3_text, spec={"k": 1},
                            limits={"max_conflicts": 100000},
                            wait=True)
    assert done["job"] != limited["job"]


def test_disconnect_cancels_into_unknown_payload(running, fig3_text):
    import asyncio

    from repro.service.jobs import JobOutcome
    from repro.service.protocol import JobKind

    box = running(jobs=1)
    client = box.client
    session_id = client.open_session(fig3_text)["session"]

    # Occupy the daemon's single worker slot with a job we gate from
    # the test, so the watched request stays pending deterministically.
    async def inject_blocker():
        gate = asyncio.Event()

        async def runner():
            await gate.wait()
            return JobOutcome(payload={"exit_code": 0})

        job, _ = box.service.jobs.submit(JobKind.VERIFY, runner,
                                         spec_text="blocker")
        return gate, job

    gate, blocker = box.submit(inject_blocker()).result(timeout=5)

    # Hand-rolled request so the socket can be dropped mid-wait.
    body = json.dumps({"session": session_id, "spec": {"k": 2},
                       "wait": True}).encode()
    raw = socket.create_connection(("127.0.0.1", box.service.port),
                                   timeout=10)
    raw.sendall(b"POST /verify HTTP/1.1\r\n"
                b"Host: t\r\nContent-Type: application/json\r\n"
                + f"Content-Length: {len(body)}\r\n\r\n".encode()
                + body)
    time.sleep(0.5)
    raw.close()  # client gives up; nobody else is watching

    deadline = time.time() + 30
    cancelled = None
    while time.time() < deadline:
        jobs = client.jobs()["jobs"]
        mine = [j for j in jobs
                if j["spec"] == "2-resilient observability"]
        if mine and mine[0]["state"] in ("cancelled", "done", "failed"):
            cancelled = mine[0]
            break
        time.sleep(0.1)
    assert cancelled is not None, "job never reached a terminal state"
    assert cancelled["state"] == "cancelled"
    assert cancelled["result"]["exit_code"] == 3
    assert cancelled["result"]["limit_reason"] == "interrupt"
    assert cancelled["result"]["cancelled"] is True
    assert cancelled["result"]["cancel_reason"] == "client-disconnect"

    box.loop.call_soon_threadsafe(gate.set)
    deadline = time.time() + 10
    while time.time() < deadline and not blocker.done.is_set():
        time.sleep(0.05)
    # The session is untouched and still answers the next query.
    again = client.verify(session=session_id, spec={"k": 1}, wait=True)
    assert again["result"]["exit_code"] in (0, 1)


def test_trace_download_validates_and_aggregates(service, fig3_text,
                                                 tmp_path):
    client = service.client
    outcome = client.verify(config=fig3_text, spec={"k": 1}, wait=True)
    text = client.trace(outcome["job"])
    records = [json.loads(line) for line in text.splitlines()]
    assert validate_trace(records) == []
    assert records[0]["type"] == "meta"
    assert records[0]["attrs"]["kind"] == "verify"
    assert records[-1]["type"] == "metrics"
    path = tmp_path / "job.jsonl"
    path.write_text(text, encoding="utf-8")
    stats = aggregate([str(path)])
    assert not stats.problems
    assert stats.queries >= 1


def test_enumerate_and_max_resiliency_payloads(service, fig3_text):
    client = service.client
    vectors = client.enumerate_vectors(config=fig3_text,
                                       spec={"k": 2}, limit=5,
                                       wait=True)
    assert vectors["result"]["status"] == "complete"
    assert vectors["result"]["count"] <= 5
    bounds = client.max_resiliency(config=fig3_text, wait=True)
    assert bounds["result"]["exit_code"] == 0
    assert bounds["result"]["total"]["exact"] is True


def test_session_invalidation_over_http(service, fig3_text):
    client = service.client
    session_id = client.open_session(fig3_text)["session"]
    client.verify(session=session_id, spec={"k": 1}, wait=True)
    assert client.invalidate(session_id)["invalidated"] == session_id
    with pytest.raises(ServiceClientError) as err:
        client.verify(session=session_id, spec={"k": 1}, wait=True)
    assert err.value.status == 404
    assert err.value.code == "no-such-session"


def test_client_errors_carry_stable_codes(service, fig3_text):
    client = service.client
    with pytest.raises(ServiceClientError) as err:
        client.request("GET", "/nope")
    assert err.value.code == "no-such-endpoint"
    with pytest.raises(ServiceClientError) as err:
        client.verify(config=fig3_text, spec={"k": -2}, wait=True)
    assert err.value.status == 400 and err.value.code == "bad-spec"
    with pytest.raises(ServiceClientError) as err:
        client.request("POST", "/verify", {"spec": {"k": 1}})
    assert err.value.code == "bad-request"
    with pytest.raises(ServiceClientError) as err:
        client.job("j999999")
    assert err.value.code == "no-such-job"


def test_lru_session_eviction_over_http(running, fig3_text):
    box = running(max_sessions=1)
    client = box.client
    client.verify(config=fig3_text, spec={"k": 1}, wait=True)
    # A second configuration (different backend → different
    # fingerprint) evicts the only slot.
    client.verify(config=fig3_text, spec={"k": 1}, wait=True,
                  backend="incremental")
    stats = client.sessions()["stats"]
    assert stats == {"open": 1, "created": 2, "reused": 0,
                     "evicted": 1, "invalidated": 0}
    # The evicted config transparently gets a fresh session.
    outcome = client.verify(config=fig3_text, spec={"k": 1}, wait=True)
    assert outcome["result"]["exit_code"] == 0
    assert client.sessions()["stats"]["created"] == 3


def test_sessions_listing_includes_solver_totals(service, fig3_text):
    client = service.client
    client.verify(config=fig3_text, spec={"k": 1}, wait=True)
    client.verify(config=fig3_text, spec={"k": 2}, wait=True)
    listing = client.sessions()["sessions"]
    assert len(listing) == 1
    solver = listing[0]["solver"]
    assert solver["queries"] == 2
    assert solver["propagations"] > 0
    assert {"tier_core", "tier_mid", "tier_local"} <= set(solver)


def test_warm_job_rejects_backend_override(service, fig3_text):
    """A mismatched per-job backend needs the cold lane, explicitly."""
    client = service.client
    session_id = client.open_session(fig3_text)["session"]
    with pytest.raises(ServiceClientError) as err:
        client.max_resiliency(session=session_id, backend="portfolio",
                              wait=True)
    assert err.value.status == 400 and err.value.code == "bad-request"
    with pytest.raises(ServiceClientError) as err:
        client.max_resiliency(config=fig3_text, backend="quantum",
                              wait=True)
    assert err.value.status == 400


def test_cold_max_resiliency_accepts_portfolio_backend(service,
                                                       fig3_text):
    client = service.client
    bounds = client.max_resiliency(config=fig3_text, backend="portfolio",
                                   cold=True, wait=True)
    assert bounds["result"]["exit_code"] == 0
    assert bounds["result"]["total"]["exact"] is True
    reference = client.max_resiliency(config=fig3_text, wait=True)
    assert (bounds["result"]["total"]["lower"]
            == reference["result"]["total"]["lower"])
