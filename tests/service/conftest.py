"""Fixtures for the service layer tests.

The daemon runs its event loop on a dedicated thread so tests drive it
exactly like real clients do — over sockets, from outside the loop.
"""

from __future__ import annotations

import asyncio
import threading

import pytest

from repro.cases import case_problem, fig3_network
from repro.scada.config_io import CaseConfig, dump_config
from repro.service import ReproService, ServiceClient


def fig3_config_text() -> str:
    return dump_config(CaseConfig(network=fig3_network(),
                                  problem=case_problem(), spec=None))


@pytest.fixture
def fig3_text() -> str:
    return fig3_config_text()


class RunningService:
    """A daemon on a background thread plus a client pointed at it."""

    def __init__(self, **kwargs) -> None:
        kwargs.setdefault("port", 0)
        kwargs.setdefault("jobs", 2)
        self.service = ReproService(**kwargs)
        self.loop = asyncio.new_event_loop()
        started = threading.Event()

        def run() -> None:
            asyncio.set_event_loop(self.loop)
            self.loop.run_until_complete(self.service.start())
            started.set()
            self.loop.run_forever()

        self.thread = threading.Thread(target=run, daemon=True)
        self.thread.start()
        assert started.wait(10), "service failed to start"
        self.client = ServiceClient(port=self.service.port)

    def submit(self, coro):
        """Run a coroutine on the service loop from the test thread."""
        return asyncio.run_coroutine_threadsafe(coro, self.loop)

    def stop(self) -> None:
        self.submit(self.service.shutdown()).result(timeout=30)
        self.loop.call_soon_threadsafe(self.loop.stop)
        self.thread.join(timeout=10)
        self.loop.close()


@pytest.fixture
def running():
    services = []

    def launch(**kwargs) -> RunningService:
        box = RunningService(**kwargs)
        services.append(box)
        return box

    yield launch
    for box in services:
        box.stop()


@pytest.fixture
def service(running):
    return running()
