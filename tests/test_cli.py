"""End-to-end CLI tests."""

import pytest

from repro.cli import main


def test_case5bus_command(capsys):
    assert main(["case5bus"]) == 0
    out = capsys.readouterr().out
    assert "fig3" in out and "fig4" in out
    assert "HOLDS" in out and "VIOLATED" in out


def test_generate_verify_roundtrip(tmp_path, capsys):
    path = str(tmp_path / "system.scada")
    assert main(["generate", "--buses", "14", "--seed", "5",
                 "--out", path]) == 0
    code = main(["verify", path, "--k", "0"])
    out = capsys.readouterr().out
    assert code in (0, 1)
    assert "observability" in out


def test_generate_to_stdout(capsys):
    assert main(["generate", "--buses", "14", "--seed", "1"]) == 0
    out = capsys.readouterr().out
    assert "[system]" in out and "[links]" in out


def test_verify_with_split_budget(tmp_path, capsys):
    path = str(tmp_path / "system.scada")
    main(["generate", "--buses", "14", "--seed", "5", "--out", path])
    capsys.readouterr()
    code = main(["verify", path, "--k1", "1", "--k2", "0",
                 "--property", "secured-observability"])
    out = capsys.readouterr().out
    assert "secured-observability" in out
    assert code in (0, 1)


def test_verify_threat_details_printed(tmp_path, capsys):
    path = str(tmp_path / "system.scada")
    main(["generate", "--buses", "14", "--seed", "5", "--out", path])
    capsys.readouterr()
    code = main(["verify", path, "--k", "5"])
    out = capsys.readouterr().out
    if code == 1:
        assert "failed devices" in out


def test_enumerate_command(tmp_path, capsys):
    path = str(tmp_path / "system.scada")
    main(["generate", "--buses", "14", "--seed", "5", "--out", path])
    capsys.readouterr()
    code = main(["enumerate", path, "--k", "2", "--limit", "5"])
    out = capsys.readouterr().out
    assert "threat vector" in out
    assert code in (0, 1)


def test_missing_requirement_errors(tmp_path):
    path = str(tmp_path / "system.scada")
    main(["generate", "--buses", "14", "--seed", "5", "--out", path])
    with pytest.raises(SystemExit):
        main(["verify", path])


def test_harden_command(tmp_path, capsys):
    path = str(tmp_path / "system.scada")
    main(["generate", "--buses", "14", "--seed", "5", "--out", path])
    capsys.readouterr()
    code = main(["harden", path, "--k", "0", "--max-repairs", "1"])
    out = capsys.readouterr().out
    assert "observability" in out
    assert code in (0, 1)


def test_max_resiliency_command(tmp_path, capsys):
    path = str(tmp_path / "system.scada")
    main(["generate", "--buses", "14", "--seed", "5", "--out", path])
    capsys.readouterr()
    assert main(["max-resiliency", path]) == 0
    out = capsys.readouterr().out
    assert "maximal resiliency" in out
    assert "IEDs only" in out


def test_verify_with_link_budget(tmp_path, capsys):
    path = str(tmp_path / "system.scada")
    main(["generate", "--buses", "14", "--seed", "5", "--out", path])
    capsys.readouterr()
    code = main(["verify", path, "--k", "0", "--link-k", "1"])
    out = capsys.readouterr().out
    assert "link failures" in out
    assert code in (0, 1)


def test_verify_command_deliverability(tmp_path, capsys):
    path = str(tmp_path / "system.scada")
    main(["generate", "--buses", "14", "--seed", "5", "--out", path])
    capsys.readouterr()
    code = main(["verify", path, "--k2", "1", "--k1", "0",
                 "--property", "command-deliverability"])
    out = capsys.readouterr().out
    assert "command-deliverability" in out
    assert code in (0, 1)


def test_verify_certify_flag(tmp_path, capsys):
    path = str(tmp_path / "system.scada")
    main(["generate", "--buses", "14", "--seed", "5", "--out", path])
    capsys.readouterr()
    code = main(["verify", path, "--k", "0", "--certify"])
    out = capsys.readouterr().out
    if code == 0:
        assert "independently checked: True" in out


def test_verify_conflict_budget_returns_unknown(tmp_path, capsys):
    from repro.cli import EXIT_UNKNOWN

    path = str(tmp_path / "system.scada")
    main(["generate", "--buses", "30", "--seed", "5", "--out", path])
    capsys.readouterr()
    code = main(["verify", path, "--k", "3", "--max-conflicts", "1"])
    out = capsys.readouterr().out
    assert code == EXIT_UNKNOWN == 3
    assert "UNKNOWN" in out and "conflicts limit" in out


def test_verify_timeout_flag_never_lies(tmp_path, capsys):
    # A generous timeout must not change the verdict of an easy query.
    path = str(tmp_path / "system.scada")
    main(["generate", "--buses", "14", "--seed", "5", "--out", path])
    capsys.readouterr()
    code = main(["verify", path, "--k", "0", "--timeout", "60"])
    out = capsys.readouterr().out
    assert code in (0, 1)
    assert "UNKNOWN" not in out


def test_enumerate_budget_marks_incomplete(tmp_path, capsys):
    from repro.cli import EXIT_UNKNOWN

    path = str(tmp_path / "system.scada")
    main(["generate", "--buses", "30", "--seed", "5", "--out", path])
    capsys.readouterr()
    code = main(["enumerate", path, "--k", "2", "--limit", "50",
                 "--max-conflicts", "1"])
    out = capsys.readouterr().out
    assert code == EXIT_UNKNOWN
    assert "incomplete" in out


def test_verify_trace_roundtrip_through_stats(tmp_path, capsys):
    import json

    from repro.obs.schema import load_trace, validate_trace
    from repro.obs.tracer import current_tracer

    path = str(tmp_path / "system.scada")
    trace = str(tmp_path / "t.jsonl")
    main(["generate", "--buses", "14", "--seed", "5", "--out", path])
    capsys.readouterr()
    code = main(["verify", path, "--k", "1", "--trace", trace])
    assert code in (0, 1)
    # The tracer was uninstalled and the trace validates end to end.
    assert current_tracer() is None
    records = load_trace(trace)
    assert validate_trace(records) == []
    span_names = {r["name"] for r in records if r["type"] == "span"}
    assert {"query", "encode", "solve"} <= span_names
    capsys.readouterr()
    assert main(["stats", trace]) == 0
    out = capsys.readouterr().out
    assert "phase timings" in out and "queries: 1" in out
    assert main(["stats", trace, "--json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["traces"] == 1
    assert payload["queries"]["count"] == 1
    assert payload["problems"] == []


def test_max_resiliency_trace_covers_parallel_sweep(tmp_path, capsys):
    from repro.obs.schema import load_trace, validate_trace

    path = str(tmp_path / "system.scada")
    trace = str(tmp_path / "sweep.jsonl")
    main(["generate", "--buses", "14", "--seed", "5", "--out", path])
    capsys.readouterr()
    assert main(["max-resiliency", path, "--jobs", "2",
                 "--trace", trace]) == 0
    capsys.readouterr()
    records = load_trace(trace)
    assert validate_trace(records) == []
    tasks = [r for r in records
             if r["type"] == "event" and r["name"] == "sweep.task"]
    assert len(tasks) == 3
    assert all(isinstance(t["attrs"].get("worker"), int) for t in tasks)
    # Worker-side query spans were replayed with pid attribution.
    queries = [r for r in records
               if r["type"] == "span" and r["name"] == "query"]
    assert queries and all("worker" in q for q in queries)


def test_stats_rejects_missing_file(tmp_path, capsys):
    code = main(["stats", str(tmp_path / "nope.jsonl")])
    err = capsys.readouterr().err
    assert code == 2
    assert "error" in err


def test_stats_flags_malformed_trace(tmp_path, capsys):
    bad = tmp_path / "bad.jsonl"
    bad.write_text('{"type": "span", "name": "solve"}\n')
    code = main(["stats", str(bad)])
    out = capsys.readouterr().out
    assert code == 2
    assert "schema problems" in out


def test_audit_builtin_case(capsys):
    assert main(["audit", "fig3"]) == 0
    out = capsys.readouterr().out
    assert "agreement" in out
    assert "security indices" in out


def test_audit_json_format(capsys):
    import json

    assert main(["audit", "fig4", "--format", "json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["disagreements"] == []
    assert payload["checks"] > 0


def test_audit_generated_config(tmp_path, capsys):
    path = str(tmp_path / "system.scada")
    main(["generate", "--buses", "14", "--seed", "5", "--out", path])
    capsys.readouterr()
    assert main(["audit", path, "--property", "observability"]) == 0
    assert "agreement" in capsys.readouterr().out


def test_audit_unparseable_config(tmp_path, capsys):
    assert main(["audit", str(tmp_path / "nope.scada")]) == 2
    assert "error" in capsys.readouterr().err


def test_max_resiliency_no_screen_agrees(tmp_path, capsys):
    path = str(tmp_path / "system.scada")
    main(["generate", "--buses", "14", "--seed", "5", "--out", path])
    capsys.readouterr()
    assert main(["max-resiliency", path]) == 0
    screened = capsys.readouterr().out
    assert main(["max-resiliency", path, "--no-screen"]) == 0
    unscreened = capsys.readouterr().out
    assert screened == unscreened


def test_enumerate_screened_empty_space(tmp_path, capsys):
    path = str(tmp_path / "system.scada")
    main(["generate", "--buses", "14", "--seed", "5", "--out", path])
    capsys.readouterr()
    code = main(["enumerate", path, "--k", "0"])
    out = capsys.readouterr().out
    if "structurally screened" in out:
        assert code == 0
    else:
        assert code in (0, 1)


def test_emulate_is_deterministic_jsonl(tmp_path, capsys):
    path = str(tmp_path / "system.scada")
    main(["generate", "--buses", "14", "--seed", "5", "--out", path])
    capsys.readouterr()
    first = str(tmp_path / "a.jsonl")
    second = str(tmp_path / "b.jsonl")
    assert main(["emulate", path, "--events", "10", "--seed", "3",
                 "--out", first]) == 0
    assert main(["emulate", path, "--events", "10", "--seed", "3",
                 "--out", second]) == 0
    with open(first, encoding="utf-8") as handle:
        lines = handle.read().splitlines()
    assert len(lines) == 10
    import json as _json
    records = [_json.loads(line) for line in lines]
    assert [r["seq"] for r in records] == list(range(1, 11))
    with open(second, encoding="utf-8") as handle:
        assert handle.read().splitlines() == lines


def test_emulate_rejects_unknown_scenario(tmp_path, capsys):
    path = str(tmp_path / "system.scada")
    main(["generate", "--buses", "14", "--seed", "5", "--out", path])
    capsys.readouterr()
    assert main(["emulate", path, "--scenarios", "zero-day"]) == 2
    assert "error" in capsys.readouterr().err


def test_watch_selfcheck_over_events_file(tmp_path, capsys):
    path = str(tmp_path / "system.scada")
    events = str(tmp_path / "events.jsonl")
    main(["generate", "--buses", "14", "--seed", "5", "--out", path])
    main(["emulate", path, "--events", "6", "--seed", "3",
          "--out", events])
    capsys.readouterr()
    code = main(["watch", path, "--events-file", events,
                 "--selfcheck", "--k", "0"])
    out = capsys.readouterr()
    assert code in (0, 1)
    assert "baseline" in out.out
    assert "watched 6 event(s)" in out.out
    assert "SELFCHECK MISMATCH" not in out.err


def test_watch_json_stream_and_trace(tmp_path, capsys):
    import json as _json

    from repro.obs.schema import validate_trace

    path = str(tmp_path / "system.scada")
    trace = str(tmp_path / "watch.jsonl")
    main(["generate", "--buses", "14", "--seed", "5", "--out", path])
    capsys.readouterr()
    code = main(["watch", path, "--emulate", "4", "--seed", "1",
                 "--k", "0", "--json", "--trace", trace])
    out = capsys.readouterr().out
    assert code in (0, 1)
    records = [_json.loads(line) for line in out.splitlines()]
    assert sum(1 for r in records if "event" in r) == 4
    assert "final" in records[-1]
    with open(trace, encoding="utf-8") as handle:
        trace_records = [_json.loads(line) for line in handle
                         if line.strip()]
    assert validate_trace(trace_records) == []
    counters = trace_records[-1]["counters"]
    assert counters.get("stream.events") == 4
