"""The Markdown audit-report generator."""

import pytest

from repro.cases import case_problem, fig3_network, fig4_network
from repro.report import audit_report


@pytest.fixture(scope="module")
def fig3_report():
    return audit_report(fig3_network(), case_problem())


def test_report_sections(fig3_report):
    for heading in ("# SCADA resiliency audit", "## Inventory",
                    "## Maximal resiliency",
                    "## Threat space beyond the certificate",
                    "## Cheapest attack", "## Hardening suggestions"):
        assert heading in fig3_report


def test_report_inventory_numbers(fig3_report):
    assert "8 IEDs, 4 RTUs" in fig3_report
    assert "14 measurements" in fig3_report
    assert "5 states" in fig3_report


def test_report_flags_unprotected_sources(fig3_report):
    # IED 1 and IED 4 cannot deliver securely in the case study.
    assert "unprotected data sources" in fig3_report
    assert "IED 1" in fig3_report and "IED 4" in fig3_report


def test_report_contains_known_maxima(fig3_report):
    # Observability tolerates 3 IEDs-only failures (paper).
    assert "| observability |" in fig3_report


def test_report_cheapest_attack_lines(fig3_report):
    assert "cheapest attack costs" in fig3_report


def test_report_fig4_suggests_repairs():
    text = audit_report(fig4_network(), case_problem())
    assert "restored by" in text or "no ≤2-step repair" in text


def test_report_without_optional_sections():
    text = audit_report(fig3_network(), case_problem(),
                        include_hardening=False,
                        include_attack_cost=False)
    assert "## Hardening suggestions" not in text
    assert "## Cheapest attack" not in text


def test_cli_report_command(tmp_path, capsys):
    from repro.cli import main
    path = str(tmp_path / "system.scada")
    main(["generate", "--buses", "14", "--seed", "5", "--out", path])
    out_path = str(tmp_path / "audit.md")
    code = main(["report", path, "--out", out_path, "--no-hardening"])
    assert code == 0
    text = open(out_path).read()
    assert "# SCADA resiliency audit" in text
