"""Shared fixtures for the test suite."""

from __future__ import annotations

import itertools
import random

import pytest

from repro.core import ObservabilityProblem, ScadaAnalyzer
from repro.grid import ieee14
from repro.scada import (
    CryptoProfile,
    Device,
    DeviceType,
    GeneratorConfig,
    Link,
    ScadaNetwork,
    generate_scada,
)


def brute_force_sat(num_vars, clauses):
    """Reference satisfiability by exhaustive enumeration."""
    for bits in itertools.product([False, True], repeat=num_vars):
        if all(any(bits[abs(l) - 1] == (l > 0) for l in c) for c in clauses):
            return True
    return False


def random_cnf(rng: random.Random, max_vars: int = 8,
               max_clauses: int = 30, max_width: int = 3):
    """A random small CNF instance for fuzzing."""
    n = rng.randint(2, max_vars)
    m = rng.randint(1, max_clauses)
    clauses = []
    for _ in range(m):
        width = rng.randint(1, max_width)
        clause = []
        for _ in range(width):
            v = rng.randint(1, n)
            clause.append(v if rng.random() < 0.5 else -v)
        clauses.append(clause)
    return n, clauses


@pytest.fixture
def tiny_network():
    """A 2-IED, 1-RTU network used by many core tests.

    IED 1 and IED 2 both uplink through RTU 3 to MTU 4; IED 1's link is
    secured, IED 2's link authenticates only.
    """
    devices = [
        Device(1, DeviceType.IED),
        Device(2, DeviceType.IED),
        Device(3, DeviceType.RTU),
        Device(4, DeviceType.MTU),
    ]
    links = [
        Link(1, 1, 3), Link(2, 2, 3), Link(3, 3, 4),
    ]
    pair_security = {
        (1, 3): CryptoProfile.parse_many("chap 64 sha2 256"),
        (2, 3): CryptoProfile.parse_many("hmac 128"),
        (3, 4): CryptoProfile.parse_many("rsa 2048 aes 256"),
    }
    return ScadaNetwork(
        devices=devices, links=links,
        measurement_map={1: [1], 2: [2]},
        pair_security=pair_security,
        name="tiny",
    )


@pytest.fixture
def tiny_problem():
    """Two measurements over two states: z1 → {1}, z2 → {2}."""
    return ObservabilityProblem(
        num_states=2,
        state_sets={1: [1], 2: [2]},
        unique_groups=[[1], [2]],
    )


@pytest.fixture
def ieee14_synthetic():
    """A deterministic synthetic SCADA system over the IEEE 14-bus grid."""
    return generate_scada(
        ieee14(),
        GeneratorConfig(measurement_fraction=0.6, hierarchy_level=1, seed=3),
    )


@pytest.fixture
def ieee14_analyzer(ieee14_synthetic):
    problem = ObservabilityProblem.from_table(ieee14_synthetic.table)
    return ScadaAnalyzer(ieee14_synthetic.network, problem)
