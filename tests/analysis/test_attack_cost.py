"""Minimum-cost threat vector search."""

import itertools

import pytest

from repro.analysis import cheapest_threat, uniform_costs
from repro.cases import case_analyzer
from repro.core import Property, ScadaAnalyzer


@pytest.fixture(scope="module")
def fig3():
    return case_analyzer("fig3")


def _brute_cheapest(analyzer, costs, secured=False):
    """Exhaustive minimum-cost threat (small systems only)."""
    field = analyzer.network.field_device_ids
    best = None
    for size in range(0, len(field) + 1):
        for combo in itertools.combinations(field, size):
            cost = sum(costs[d] for d in combo)
            if best is not None and cost >= best:
                continue
            if not analyzer.reference.observable(set(combo),
                                                 secured=secured):
                best = cost
        # All-unit-cost pruning is not valid for mixed costs, so scan all
        # sizes; the 12-device case study keeps this tractable.
    return best


def test_unit_costs_match_brute_force(fig3):
    costs = {d: 1 for d in fig3.network.field_device_ids}
    result = cheapest_threat(fig3, costs=costs)
    expected = _brute_cheapest(fig3, costs)
    assert result.attack_exists
    assert result.cost == expected
    # The reported vector is a genuine threat of exactly that size.
    from repro.core import ResiliencySpec
    spec = ResiliencySpec.observability(k=result.cost)
    assert fig3.reference.is_threat(spec, result.threat.failed_devices)


def test_weighted_costs_match_brute_force(fig3):
    costs = uniform_costs(fig3, ied_cost=1, rtu_cost=4)
    result = cheapest_threat(fig3, costs=costs)
    expected = _brute_cheapest(fig3, costs)
    assert result.cost == expected
    # The returned vector realizes the optimum.
    realized = sum(costs[d] for d in result.threat.failed_devices)
    assert realized == result.cost


def test_secured_property_cheaper(fig3):
    """Secured observability has strictly more failure modes, so the
    cheapest secured attack can never cost more than the plain one."""
    costs = uniform_costs(fig3, ied_cost=2, rtu_cost=5)
    plain = cheapest_threat(fig3, Property.OBSERVABILITY, costs)
    secured = cheapest_threat(fig3, Property.SECURED_OBSERVABILITY, costs)
    assert secured.cost <= plain.cost


def test_rtu_pricing_changes_the_attack(fig3):
    """With RTUs effectively free the optimum uses RTUs; with RTUs
    prohibitively priced it shifts to IEDs."""
    cheap_rtus = cheapest_threat(
        fig3, costs=uniform_costs(fig3, ied_cost=10, rtu_cost=1))
    dear_rtus = cheapest_threat(
        fig3, costs=uniform_costs(fig3, ied_cost=1, rtu_cost=100))
    assert cheap_rtus.threat.failed_rtus
    assert not dear_rtus.threat.failed_rtus


def test_no_attack_possible():
    """A problem whose states are covered by unassigned measurements is
    unobservable from the start — cost 0 —, while a trivially observable
    one with no deliverable failure mode reports cost 0 as well; use a
    2-IED network where observability survives all failures of *one*
    type to exercise the None path instead."""
    from repro.core import ObservabilityProblem
    from repro.scada import Device, DeviceType, Link, ScadaNetwork

    # Observability needs only state 1, covered by both measurements,
    # and the unique-count threshold is 1 — but failing *everything*
    # still kills delivery, so a threat always exists for field-device
    # failures.  The no-attack case therefore needs zero field devices
    # to matter: make the problem have zero states?  Not allowed.  The
    # realistic no-attack case: problem already unobservable → cost 0.
    devices = [Device(1, DeviceType.IED), Device(2, DeviceType.RTU),
               Device(3, DeviceType.MTU)]
    links = [Link(1, 1, 2), Link(2, 2, 3)]
    network = ScadaNetwork(devices=devices, links=links,
                           measurement_map={1: [1]})
    problem = ObservabilityProblem(num_states=2, state_sets={1: [1]},
                                   unique_groups=[[1]])
    # lint=False: the zero-coverage state is the point of the test.
    analyzer = ScadaAnalyzer(network, problem, lint=False)
    result = cheapest_threat(analyzer)
    assert result.attack_exists
    assert result.cost == 0  # state 2 is uncovered with no failures


def test_invalid_costs_rejected(fig3):
    with pytest.raises(ValueError):
        cheapest_threat(fig3, costs={1: 0})
    with pytest.raises(ValueError):
        cheapest_threat(fig3, costs={999: 2})


def test_summary_strings(fig3):
    result = cheapest_threat(fig3)
    assert "cheapest attack costs" in result.summary()


def test_cheapest_command_deliverability_attack(fig3):
    result = cheapest_threat(fig3, Property.COMMAND_DELIVERABILITY,
                             uniform_costs(fig3, ied_cost=1, rtu_cost=2))
    assert result.attack_exists
    # The optimum is any single RTU (cost 2): stranding its IEDs.
    assert result.cost == 2
    assert result.threat.failed_rtus
