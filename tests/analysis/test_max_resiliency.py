"""Maximal-resiliency search."""

import pytest

from repro.analysis import (
    max_ied_resiliency,
    max_rtu_resiliency,
    max_total_resiliency,
)
from repro.cases import case_analyzer
from repro.core import Property, ResiliencySpec, ScadaAnalyzer, Status


@pytest.fixture(scope="module")
def fig3():
    return case_analyzer("fig3")


@pytest.fixture(scope="module")
def fig4():
    return case_analyzer("fig4")


def test_case_study_ied_resiliency(fig3):
    # Paper: tolerates exactly 3 IED-only failures.
    assert max_ied_resiliency(fig3) == 3


def test_case_study_fig4_rtu_resiliency(fig4):
    # Paper: Fig. 4 is not resilient to any RTU failure.
    assert max_rtu_resiliency(fig4) == 0
    assert max_ied_resiliency(fig4) == 3


def test_secured_maxima(fig3):
    assert max_ied_resiliency(
        fig3, Property.SECURED_OBSERVABILITY) >= 1
    assert max_rtu_resiliency(
        fig3, Property.SECURED_OBSERVABILITY) >= 1


def test_total_resiliency_consistent_with_verify(fig3):
    k = max_total_resiliency(fig3)
    assert fig3.verify(ResiliencySpec.observability(k=k)).is_resilient
    assert not fig3.verify(
        ResiliencySpec.observability(k=k + 1)).is_resilient


def test_negative_one_when_property_never_holds(tiny_network,
                                                tiny_problem):
    analyzer = ScadaAnalyzer(tiny_network, tiny_problem)
    # Secured observability fails even with zero failures.
    assert max_total_resiliency(
        analyzer, Property.SECURED_OBSERVABILITY) == -1


def test_monotonicity_on_synthetic(ieee14_analyzer):
    k = max_total_resiliency(ieee14_analyzer)
    assert k >= 0
    for smaller in range(k + 1):
        spec = ResiliencySpec.observability(k=smaller)
        assert ieee14_analyzer.verify(spec).is_resilient


def test_more_measurements_no_less_resilient():
    """Fig. 7(a) trend: larger measurement sets ⇒ resiliency no lower."""
    from repro.core import ObservabilityProblem
    from repro.grid import ieee14, sampled_measurement_plan
    from repro.scada import GeneratorConfig, generate_scada

    maxima = []
    for fraction in (0.5, 1.0):
        plan = sampled_measurement_plan(ieee14(), fraction, seed=11)
        syn = generate_scada(ieee14(), GeneratorConfig(seed=11), plan=plan)
        analyzer = ScadaAnalyzer(
            syn.network, ObservabilityProblem.from_table(syn.table))
        maxima.append(max_ied_resiliency(analyzer))
    assert maxima[1] >= maxima[0]


def test_command_deliverability_maxima(fig3):
    # RTU 9 strands IEDs 1-3, so no RTU failure is tolerated...
    assert max_rtu_resiliency(
        fig3, Property.COMMAND_DELIVERABILITY) == 0
    # ...but IED failures never strand anyone else.
    n_ieds = len(fig3.network.ied_ids)
    assert max_ied_resiliency(
        fig3, Property.COMMAND_DELIVERABILITY) == n_ieds
