"""Monte-Carlo availability estimation."""

import math

import pytest

from repro.analysis import (
    estimate_availability,
    max_total_resiliency,
)
from repro.analysis.monte_carlo import AvailabilityEstimate
from repro.cases import case_analyzer
from repro.core import Property


@pytest.fixture(scope="module")
def fig3():
    return case_analyzer("fig3")


def test_zero_failure_probability_is_fully_available(fig3):
    estimate = estimate_availability(fig3, failure_probability=0.0,
                                     samples=200)
    assert estimate.availability == 1.0
    assert estimate.violations == 0


def test_certain_failure_kills_availability(fig3):
    estimate = estimate_availability(fig3, failure_probability=1.0,
                                     samples=50)
    assert estimate.availability == 0.0


def test_availability_decreases_with_failure_rate(fig3):
    low = estimate_availability(fig3, failure_probability=0.02,
                                samples=2000, seed=1)
    high = estimate_availability(fig3, failure_probability=0.3,
                                 samples=2000, seed=1)
    assert low.availability >= high.availability


def test_certificate_cross_check(fig3):
    k_star = max_total_resiliency(fig3)
    estimate = estimate_availability(fig3, failure_probability=0.1,
                                     samples=3000, seed=2,
                                     certificate=k_star,
                                     cross_check=True)
    # Certified-safe scenarios were encountered and none violated
    # (a violation would have raised inside the estimator).
    assert estimate.skipped_by_certificate > 0
    assert 0.0 <= estimate.availability <= 1.0


def test_wrong_certificate_is_caught(fig3):
    k_star = max_total_resiliency(fig3)
    with pytest.raises(AssertionError):
        estimate_availability(fig3, failure_probability=0.4,
                              samples=3000, seed=3,
                              certificate=k_star + 3,
                              cross_check=True)


class _CountingReference:
    """Wraps a reference evaluator, counting ``observable`` calls."""

    def __init__(self, inner):
        self._inner = inner
        self.calls = 0

    def observable(self, failed, secured=False):
        self.calls += 1
        return self._inner.observable(failed, secured=secured)

    def __getattr__(self, name):
        return getattr(self._inner, name)


class _CountingAnalyzer:
    """Analyzer facade exposing the counting reference evaluator."""

    def __init__(self, analyzer):
        self.network = analyzer.network
        self.reference = _CountingReference(analyzer.reference)


def test_certificate_skip_performs_no_reference_evaluations(fig3):
    """The k*-certificate shortcut must actually skip evaluation: with
    cross_check off (the default), certified scenarios cost zero
    reference calls."""
    k_star = max_total_resiliency(fig3)
    counting = _CountingAnalyzer(fig3)
    n = len(fig3.network.field_device_ids)
    estimate = estimate_availability(counting, failure_probability=0.1,
                                     samples=1000, seed=2,
                                     certificate=max(k_star, n))
    # Every scenario fell under the (generous) certificate …
    assert estimate.skipped_by_certificate == estimate.samples
    # … and none of them touched the reference evaluator.
    assert counting.reference.calls == 0


def test_cross_check_true_evaluates_certified_scenarios(fig3):
    k_star = max_total_resiliency(fig3)
    counting = _CountingAnalyzer(fig3)
    estimate = estimate_availability(counting, failure_probability=0.1,
                                     samples=500, seed=2,
                                     certificate=k_star,
                                     cross_check=True)
    # With the cross-check armed every sample is evaluated, certified
    # or not.
    assert counting.reference.calls == estimate.samples


def test_per_device_overrides(fig3):
    # Making one RTU certain to fail caps availability hard.
    rtu = fig3.network.rtu_ids[0]
    estimate = estimate_availability(
        fig3, failure_probability=0.0, per_device={rtu: 1.0},
        samples=300, seed=4)
    expected_holds = fig3.reference.observable({rtu})
    assert (estimate.availability == 1.0) == expected_holds


def test_input_validation(fig3):
    with pytest.raises(ValueError):
        estimate_availability(fig3, failure_probability=1.5)
    with pytest.raises(ValueError):
        estimate_availability(fig3, per_device={9999: 0.5})
    with pytest.raises(ValueError):
        estimate_availability(fig3, per_device={1: 2.0})
    with pytest.raises(ValueError):
        estimate_availability(fig3, prop=Property.BAD_DATA_DETECTABILITY)


def test_deterministic_under_seed(fig3):
    a = estimate_availability(fig3, failure_probability=0.2,
                              samples=500, seed=7)
    b = estimate_availability(fig3, failure_probability=0.2,
                              samples=500, seed=7)
    assert a.violations == b.violations


def test_summary_string(fig3):
    estimate = estimate_availability(fig3, failure_probability=0.1,
                                     samples=100)
    assert "availability" in estimate.summary()


# ---------------------------------------------------------------------
# Wilson score interval (confidence_95)
# ---------------------------------------------------------------------

def _wilson_half_width(violations, n, z=1.96):
    """Closed-form Wilson half-width, written out independently."""
    p = violations / n
    denom = 1.0 + z * z / n
    return (z / denom) * math.sqrt(p * (1 - p) / n + z * z / (4 * n * n))


def _estimate(violations, n):
    return AvailabilityEstimate(
        prop=Property.OBSERVABILITY, samples=n, violations=violations,
        skipped_by_certificate=0, certificate_k=None)


@pytest.mark.parametrize("n", [10, 100, 2000])
def test_wilson_interval_closed_forms(n):
    z = 1.96
    # p̂ = 0: Wald collapses to ±0; Wilson gives z²/(2(n+z²)).
    zero = _estimate(0, n).confidence_95
    assert zero == pytest.approx(z * z / (2 * (n + z * z)))
    assert zero > 0.0
    # p̂ = 1/n and p̂ = 1 against the independently-written closed form.
    assert _estimate(1, n).confidence_95 == pytest.approx(
        _wilson_half_width(1, n))
    assert _estimate(n, n).confidence_95 == pytest.approx(
        _wilson_half_width(n, n))
    # Symmetry: p̂ = 1 matches p̂ = 0 exactly.
    assert _estimate(n, n).confidence_95 == pytest.approx(zero)


def test_wilson_interval_never_degenerates():
    for n in (1, 5, 50, 500):
        for violations in (0, n // 2, n):
            half = _estimate(violations, n).confidence_95
            assert 0.0 < half < 1.0


def test_wilson_narrows_with_samples():
    assert (_estimate(0, 4000).confidence_95
            < _estimate(0, 400).confidence_95
            < _estimate(0, 40).confidence_95)
