"""Monte-Carlo availability estimation."""

import pytest

from repro.analysis import (
    estimate_availability,
    max_total_resiliency,
)
from repro.cases import case_analyzer
from repro.core import Property


@pytest.fixture(scope="module")
def fig3():
    return case_analyzer("fig3")


def test_zero_failure_probability_is_fully_available(fig3):
    estimate = estimate_availability(fig3, failure_probability=0.0,
                                     samples=200)
    assert estimate.availability == 1.0
    assert estimate.violations == 0


def test_certain_failure_kills_availability(fig3):
    estimate = estimate_availability(fig3, failure_probability=1.0,
                                     samples=50)
    assert estimate.availability == 0.0


def test_availability_decreases_with_failure_rate(fig3):
    low = estimate_availability(fig3, failure_probability=0.02,
                                samples=2000, seed=1)
    high = estimate_availability(fig3, failure_probability=0.3,
                                 samples=2000, seed=1)
    assert low.availability >= high.availability


def test_certificate_cross_check(fig3):
    k_star = max_total_resiliency(fig3)
    estimate = estimate_availability(fig3, failure_probability=0.1,
                                     samples=3000, seed=2,
                                     certificate=k_star)
    # Certified-safe scenarios were encountered and none violated
    # (a violation would have raised inside the estimator).
    assert estimate.skipped_by_certificate > 0
    assert 0.0 <= estimate.availability <= 1.0


def test_wrong_certificate_is_caught(fig3):
    k_star = max_total_resiliency(fig3)
    with pytest.raises(AssertionError):
        estimate_availability(fig3, failure_probability=0.4,
                              samples=3000, seed=3,
                              certificate=k_star + 3)


def test_per_device_overrides(fig3):
    # Making one RTU certain to fail caps availability hard.
    rtu = fig3.network.rtu_ids[0]
    estimate = estimate_availability(
        fig3, failure_probability=0.0, per_device={rtu: 1.0},
        samples=300, seed=4)
    expected_holds = fig3.reference.observable({rtu})
    assert (estimate.availability == 1.0) == expected_holds


def test_input_validation(fig3):
    with pytest.raises(ValueError):
        estimate_availability(fig3, failure_probability=1.5)
    with pytest.raises(ValueError):
        estimate_availability(fig3, per_device={9999: 0.5})
    with pytest.raises(ValueError):
        estimate_availability(fig3, per_device={1: 2.0})
    with pytest.raises(ValueError):
        estimate_availability(fig3, prop=Property.BAD_DATA_DETECTABILITY)


def test_deterministic_under_seed(fig3):
    a = estimate_availability(fig3, failure_probability=0.2,
                              samples=500, seed=7)
    b = estimate_availability(fig3, failure_probability=0.2,
                              samples=500, seed=7)
    assert a.violations == b.violations


def test_summary_string(fig3):
    estimate = estimate_availability(fig3, failure_probability=0.1,
                                     samples=100)
    assert "availability" in estimate.summary()
