"""Threat-space enumeration and statistics."""

import pytest

from repro.analysis import threat_space
from repro.cases import case_analyzer
from repro.core import ResiliencySpec


@pytest.fixture(scope="module")
def fig3():
    return case_analyzer("fig3")


def test_case_study_space_size(fig3):
    space = threat_space(fig3, ResiliencySpec.observability(k1=2, k2=1))
    assert space.size == 9
    assert not space.truncated


def test_histogram_by_size(fig3):
    space = threat_space(fig3, ResiliencySpec.observability(k1=2, k2=1))
    histogram = space.by_size()
    assert sum(histogram.values()) == 9
    assert all(size <= 3 for size in histogram)


def test_limit_marks_truncation(fig3):
    space = threat_space(fig3, ResiliencySpec.observability(k1=2, k2=1),
                         limit=3)
    assert space.size == 3
    assert space.truncated


def test_empty_space_when_resilient(fig3):
    space = threat_space(fig3, ResiliencySpec.observability(k1=1, k2=1))
    assert space.size == 0


def test_larger_spec_grows_space(fig3):
    """Fig. 7(b) trend: wider budgets ⇒ more threat vectors."""
    small = threat_space(fig3, ResiliencySpec.observability(k1=2, k2=1))
    large = threat_space(fig3, ResiliencySpec.observability(k1=2, k2=2))
    assert large.size >= small.size


def test_repr(fig3):
    space = threat_space(fig3, ResiliencySpec.observability(k1=2, k2=1))
    assert "9" in repr(space)


def test_structural_screen_proves_empty_spaces_without_solving(fig3):
    spec = ResiliencySpec.observability(k1=0, k2=0)
    screened = threat_space(fig3, spec)
    assert screened.screened and screened.size == 0 and screened.exact
    # The solver-backed enumeration agrees with the structural proof.
    solved = threat_space(fig3, spec, screen=False)
    assert not solved.screened
    assert solved.size == 0


def test_screen_never_prunes_nonempty_spaces(fig3):
    for budget in ((1, 1), (2, 1), (2, 2)):
        spec = ResiliencySpec.observability(k1=budget[0], k2=budget[1])
        screened = threat_space(fig3, spec)
        unscreened = threat_space(fig3, spec, screen=False)
        assert screened.size == unscreened.size
        if screened.screened:
            assert unscreened.size == 0


def test_link_budget_specs_are_never_screened(fig3):
    spec = ResiliencySpec.observability(k=0, link_k=1)
    space = threat_space(fig3, spec)
    assert not space.screened
