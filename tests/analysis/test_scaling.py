"""Scalability sweep drivers."""

import pytest

from repro.analysis import measure_instance, sweep_bus_sizes, sweep_hierarchy
from repro.core import Property


def test_measure_instance_14bus():
    point = measure_instance(14, 1, 0, runs=1)
    assert point.num_devices > 10
    assert point.max_k >= 0
    assert point.sat_times  # found a threat at max_k + 1
    assert point.num_vars > 0


def test_sweep_bus_sizes_small():
    sweep = sweep_bus_sizes([14], seeds=(0,), runs=1)
    table = sweep.format_table("bus_size")
    assert "14" in table
    aggregated = sweep.aggregate("bus_size")
    assert 14 in aggregated
    assert aggregated[14]["devices"] > 0


def test_sweep_hierarchy_small():
    sweep = sweep_hierarchy(14, [1, 2], seeds=(0,), runs=1)
    aggregated = sweep.aggregate("hierarchy")
    assert set(aggregated) == {1, 2}


def test_secured_sweep_has_larger_models():
    plain = measure_instance(14, 1, 0, runs=1,
                             prop=Property.OBSERVABILITY)
    secured = measure_instance(14, 1, 0, runs=1, secure_fraction=1.0,
                               prop=Property.SECURED_OBSERVABILITY)
    # Paper §V-B: the secured model is larger.
    assert secured.num_clauses > plain.num_clauses


@pytest.mark.slow
def test_measure_instance_30bus():
    point = measure_instance(30, 2, 0, runs=1)
    assert point.num_devices > 30
    assert point.sat_times
