"""Unit tests for literal/clause primitives."""

import pytest

from repro.sat.types import (
    TautologyError,
    from_internal,
    internal_neg,
    max_var,
    neg,
    normalize_clause,
    to_internal,
    var_of,
)


def test_neg_flips_sign():
    assert neg(3) == -3
    assert neg(-7) == 7


def test_var_of_strips_sign():
    assert var_of(5) == 5
    assert var_of(-5) == 5


@pytest.mark.parametrize("lit", [1, -1, 42, -42, 1000, -1000])
def test_internal_roundtrip(lit):
    assert from_internal(to_internal(lit)) == lit


def test_internal_encoding_layout():
    assert to_internal(1) == 2
    assert to_internal(-1) == 3
    assert to_internal(2) == 4


def test_internal_neg_is_involution():
    for lit in (1, -1, 9, -9):
        ilit = to_internal(lit)
        assert internal_neg(internal_neg(ilit)) == ilit
        assert from_internal(internal_neg(ilit)) == -lit


def test_normalize_deduplicates_and_sorts():
    assert normalize_clause([3, 1, 3, -2]) == [1, -2, 3]


def test_normalize_rejects_zero():
    with pytest.raises(ValueError):
        normalize_clause([1, 0])


def test_normalize_detects_tautology():
    with pytest.raises(TautologyError):
        normalize_clause([1, -1])


def test_max_var():
    assert max_var([[1, -5], [3]]) == 5
    assert max_var([]) == 0
