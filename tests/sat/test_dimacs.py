"""DIMACS parsing and serialization."""

import pytest

from repro.sat import CNF, dumps, loads
from repro.sat.dimacs import DimacsError


def test_roundtrip():
    cnf = CNF(clauses=[[1, -2], [2, 3], [-1]])
    text = dumps(cnf, comment="test formula")
    back = loads(text)
    assert back.num_vars == cnf.num_vars
    assert sorted(map(tuple, back.clauses)) == sorted(map(tuple, cnf.clauses))


def test_parse_with_comments_and_blank_lines():
    text = """
c a comment
p cnf 3 2

1 -2 0
c another
2 3 0
"""
    cnf = loads(text)
    assert cnf.num_vars == 3
    assert len(cnf) == 2


def test_declared_vars_respected_when_larger():
    cnf = loads("p cnf 10 1\n1 2 0\n")
    assert cnf.num_vars == 10


def test_missing_trailing_zero_tolerated():
    cnf = loads("p cnf 2 1\n1 2\n")
    assert len(cnf) == 1


def test_bad_problem_line():
    with pytest.raises(DimacsError):
        loads("p sat 3 2\n1 0\n")


def test_bad_literal():
    with pytest.raises(DimacsError):
        loads("p cnf 2 1\n1 x 0\n")


def test_too_many_clauses_rejected():
    with pytest.raises(DimacsError):
        loads("p cnf 2 1\n1 0\n2 0\n")


def test_multiline_clause():
    cnf = loads("p cnf 3 1\n1\n2\n3 0\n")
    assert cnf.clauses == [[1, 2, 3]]


def test_roundtrip_fuzz():
    import random
    from repro.sat import SatSolver
    rng = random.Random(17)
    for _ in range(50):
        n = rng.randint(1, 15)
        m = rng.randint(1, 40)
        cnf = CNF(num_vars=n)
        for _ in range(m):
            clause = [v if rng.random() < 0.5 else -v
                      for v in rng.sample(range(1, n + 1),
                                          rng.randint(1, min(4, n)))]
            cnf.add_clause(clause)
        back = loads(dumps(cnf))
        assert back.num_vars == cnf.num_vars
        assert sorted(map(tuple, back.clauses)) == \
            sorted(map(tuple, cnf.clauses))

        # Satisfiability equivalence through the round trip.
        def solve(formula):
            solver = SatSolver()
            while solver.num_vars < formula.num_vars:
                solver.new_var()
            ok = all(solver.add_clause(c) for c in formula.clauses)
            return solver.solve() if ok else False

        assert solve(cnf) == solve(back)


def test_comment_only_file_is_empty_cnf():
    cnf = loads("c nothing here\nc still nothing\n\nc done\n")
    assert cnf.num_vars == 0
    assert cnf.clauses == []


def test_empty_string_is_empty_cnf():
    cnf = loads("")
    assert cnf.num_vars == 0 and len(cnf) == 0


def test_missing_header_still_parses():
    cnf = loads("1 -2 0\n2 3 0\n")
    assert cnf.num_vars == 3
    assert cnf.clauses == [[1, -2], [2, 3]]


def test_literals_beyond_declared_count_grow_num_vars():
    cnf = loads("p cnf 2 1\n1 7 0\n")
    assert cnf.num_vars == 7
    assert cnf.clauses == [[1, 7]]


def test_header_after_clauses_tolerated():
    # Some generators emit the header late; the parser is line-oriented.
    cnf = loads("1 2 0\np cnf 5 1\n")
    assert cnf.num_vars == 5
    assert len(cnf) == 1


def test_zero_only_line_is_empty_clause():
    cnf = loads("p cnf 1 2\n1 0\n0\n")
    assert [] in cnf.clauses


def test_crlf_and_whitespace_tolerated():
    cnf = loads("p cnf 2 1\r\n  1   -2  0\r\n")
    assert cnf.clauses == [[1, -2]]


def test_declared_clause_count_not_enforced_when_fewer():
    # Fewer clauses than declared is tolerated (trailing clauses may be
    # stripped by external tools); only *more* clauses is an error.
    cnf = loads("p cnf 3 5\n1 2 0\n")
    assert len(cnf) == 1
