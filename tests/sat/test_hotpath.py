"""Hot-path regressions: heap growth, memory polling, inprocessing.

Three properties the arena rewrite must hold forever:

* the VSIDS order heap stays bounded on bump-heavy instances (the
  historical solver re-pushed the whole trail on every backtrack and
  grew without bound);
* the memory estimate is O(1) — polling it every 128 iterations must
  not dominate a solve;
* inprocessing (subsumption / self-subsuming resolution / bounded
  vivification) never changes an answer, and every strengthening step
  it logs keeps the RUP proof replayable.
"""

import random
import time

from repro.sat import SatSolver
from repro.sat.proof import check_unsat_proof
from tests.conftest import brute_force_sat


def _pigeonhole(holes: int):
    """PHP(holes+1, holes): unsatisfiable and conflict-heavy."""
    pigeons = holes + 1
    var = lambda p, h: p * holes + h + 1
    clauses = [[var(p, h) for h in range(holes)] for p in range(pigeons)]
    for h in range(holes):
        for p1 in range(pigeons):
            for p2 in range(p1 + 1, pigeons):
                clauses.append([-var(p1, h), -var(p2, h)])
    return pigeons * holes, clauses


def _random_3cnf(rng: random.Random, max_vars: int = 12):
    """Random 3-CNF near the phase transition: search-hard both ways.

    `tests.conftest.random_cnf` mixes unit clauses in, so most of its
    unsat instances die at `add_clause` time before any search (or
    inprocessing) happens; fixed-width clauses at ratio ~4-5 force the
    refutation through conflict analysis instead.
    """
    n = rng.randint(8, max_vars)
    m = int(n * rng.uniform(3.8, 5.2))
    clauses = []
    for _ in range(m):
        lits = rng.sample(range(1, n + 1), 3)
        clauses.append([v if rng.random() < 0.5 else -v for v in lits])
    return n, clauses


def _force_inprocessing(solver: SatSolver) -> None:
    """Run an inprocessing round between every pair of restarts."""
    solver._inprocess_next = 0
    solver._inprocess_interval = 1


def test_order_heap_stays_bounded_on_bump_heavy_instance():
    """Satellite 1: `_decide` stale entries no longer accumulate.

    PHP(7,6) drives thousands of conflicts and backtracks; with the
    historical re-push-the-trail `_cancel_until` the heap ballooned to
    hundreds of entries per variable.  The `_heap_act` freshness filter
    caps live+stale entries near the variable count.
    """
    n, clauses = _pigeonhole(6)
    solver = SatSolver()
    for clause in clauses:
        solver.add_clause(clause)
    assert solver.solve() is False
    assert solver.stats.conflicts > 500  # genuinely bump-heavy
    assert len(solver._order_heap) <= 2 * solver.num_vars + 64


def test_memory_estimate_is_constant_time_and_sane():
    """Satellite 2: the estimate must not scale with clause count."""
    small = SatSolver()
    small.add_clause([1, 2])

    big = SatSolver()
    rng = random.Random(0)
    for _ in range(50_000):
        v = rng.randint(1, 200)
        w = rng.randint(201, 400)
        big.add_clause([v, -w, rng.choice([1, -1]) * rng.randint(1, 400)])

    assert big._estimate_memory_mb() > small._estimate_memory_mb() > 0.0

    # 10k polls over a 50k-clause database: an O(clauses) walk would
    # take seconds here; the O(1) arena totals take microseconds each.
    start = time.perf_counter()
    for _ in range(10_000):
        big._estimate_memory_mb()
    per_call = (time.perf_counter() - start) / 10_000
    assert per_call < 200e-6, f"memory poll costs {per_call * 1e6:.1f}us"


def test_memory_polling_does_not_dominate_solve():
    """Satellite 2: cumulative poll time stays a sliver of the solve."""
    n, clauses = _pigeonhole(6)
    solver = SatSolver()
    for clause in clauses:
        solver.add_clause(clause)

    poll_time = 0.0
    original = solver._estimate_memory_mb

    def timed_estimate():
        nonlocal poll_time
        start = time.perf_counter()
        try:
            return original()
        finally:
            poll_time += time.perf_counter() - start

    solver._estimate_memory_mb = timed_estimate
    start = time.perf_counter()
    from repro.sat.limits import Limits

    assert solver.solve(limits=Limits(max_memory_mb=512.0)) is False
    wall = time.perf_counter() - start
    assert poll_time < 0.2 * wall, (
        f"memory polling took {poll_time:.4f}s of a {wall:.4f}s solve")


def test_inprocessing_preserves_answers_against_brute_force():
    """Satellite 3: per-restart inprocessing never flips a verdict."""
    rng = random.Random(20260808)
    rounds_seen = 0
    for _ in range(120):
        n, clauses = _random_3cnf(rng)
        solver = SatSolver(restart_base=1)  # restart (and inprocess) often
        _force_inprocessing(solver)
        ok = all(solver.add_clause(c) for c in clauses)
        result = solver.solve() if ok else False
        assert result == brute_force_sat(n, clauses)
        stats = solver.stats
        rounds_seen += (stats.subsumed_clauses + stats.strengthened_clauses
                        + stats.vivified_clauses)
        if result:
            for clause in clauses:
                assert any(solver.model_value(l) for l in clause)
    # The fuzz must actually exercise the inprocessing paths.
    assert rounds_seen > 0


def test_rup_proof_replays_after_inprocessing_random():
    """Satellite 3: strengthened clauses keep the proof log RUP-valid."""
    rng = random.Random(1606)
    unsat_seen = 0
    for _ in range(80):
        n, clauses = _random_3cnf(rng, max_vars=10)
        solver = SatSolver(restart_base=1)
        solver.enable_proof()
        _force_inprocessing(solver)
        ok = all(solver.add_clause(c) for c in clauses)
        if not ok:
            continue
        if solver.solve() is False:
            unsat_seen += 1
            originals, learned = solver.proof
            assert check_unsat_proof(originals, learned, num_vars=n)
    assert unsat_seen > 10  # the generator must produce real refutations


def test_rup_proof_replays_after_inprocessing_pigeonhole():
    """A guaranteed-hard refutation with inprocessing forced on."""
    n, clauses = _pigeonhole(5)
    solver = SatSolver(restart_base=1)
    solver.enable_proof()
    _force_inprocessing(solver)
    for clause in clauses:
        solver.add_clause(clause)
    assert solver.solve() is False
    stats = solver.stats
    assert (stats.subsumed_clauses + stats.strengthened_clauses
            + stats.vivified_clauses) > 0
    originals, learned = solver.proof
    assert check_unsat_proof(originals, learned, num_vars=n)
    # Deletion records are observability-only but must be well-formed.
    deletions = solver.proof_deletions
    assert deletions is not None
    assert all(isinstance(l, int) and l != 0
               for clause in deletions for l in clause)


def test_top_active_vars_root_unassigned_only():
    solver = SatSolver()
    for clause in ([1, 2], [-1, 3], [4, 5], [-4, 5]):
        solver.add_clause(clause)
    solver.add_clause([1])  # root-level unit: var 1 assigned at level 0
    assert solver.solve() is True
    top = solver.top_active_vars(10)
    assert 1 not in top
    assert all(1 <= v <= solver.num_vars for v in top)
    assert len(top) == len(set(top))
    assert solver.top_active_vars(2) == top[:2]
