"""Resource-bounded solving: Limits, LimitReason, interrupts, Luby.

The invariant under test everywhere: an expired budget yields ``None``
(UNKNOWN) with the reason recorded — never a spurious True/False — and
a solve that *completes* under a budget is bit-identical to the
unbounded solve.
"""

import time

import pytest
from hypothesis import given, settings, strategies as st

from repro.sat import LimitReason, Limits, ResourceLimitReached, SatSolver
from repro.sat.solver import _luby


def _pigeonhole(holes: int) -> SatSolver:
    """PHP(holes+1, holes): classic exponentially-hard unsat family."""
    s = SatSolver()
    P = {}
    v = 0
    for p in range(holes + 1):
        for h in range(holes):
            v += 1
            P[p, h] = v
    for p in range(holes + 1):
        s.add_clause([P[p, h] for h in range(holes)])
    for h in range(holes):
        for p1 in range(holes + 1):
            for p2 in range(p1 + 1, holes + 1):
                s.add_clause([-P[p1, h], -P[p2, h]])
    return s


# ----------------------------------------------------------------------
# Luby restart sequence vs an independent reference construction
# ----------------------------------------------------------------------

def _reference_luby_prefix(length: int) -> list:
    """Build the Luby series by its defining recursion.

    S(1) = [1]; S(k+1) = S(k) ++ S(k) ++ [2^k].  Concatenating forever
    yields 1 1 2 1 1 2 4 1 1 2 1 1 2 4 8 ...
    """
    series = [1]
    power = 1
    while len(series) < length:
        series = series + series + [2 ** power]
        power += 1
    return series[:length]


def test_luby_matches_reference_series():
    reference = _reference_luby_prefix(1000)
    assert [_luby(i) for i in range(1000)] == reference


@given(st.integers(min_value=0, max_value=100_000))
@settings(max_examples=200, deadline=None)
def test_luby_properties_at_arbitrary_index(i):
    value = _luby(i)
    # Every element is a power of two ...
    assert value >= 1 and value & (value - 1) == 0
    # ... and the subsequence ending each block is 2^k at index 2^(k+1)-2.
    if value > 1 and (i + 2) & (i + 1) == 0:
        assert value == (i + 2) // 2


# ----------------------------------------------------------------------
# Limits dataclass
# ----------------------------------------------------------------------

def test_limits_validation_and_unbounded():
    assert Limits().unbounded
    assert not Limits(max_conflicts=10).unbounded
    with pytest.raises(ValueError):
        Limits(max_time=-1.0)
    with pytest.raises(ValueError):
        Limits(max_conflicts=-5)


def test_limits_merge_takes_fieldwise_minimum():
    a = Limits(max_time=10.0, max_conflicts=500)
    b = Limits(max_time=2.0, max_propagations=1000)
    merged = a.merged(b)
    assert merged.max_time == 2.0
    assert merged.max_conflicts == 500
    assert merged.max_propagations == 1000
    assert merged.max_memory_mb is None


def test_limits_with_time_and_describe():
    limits = Limits(max_conflicts=100).with_time(1.5)
    assert limits.max_time == 1.5 and limits.max_conflicts == 100
    text = Limits(max_time=2.0, max_conflicts=7).describe()
    assert "2" in text and "7" in text
    assert Limits().describe() == "unbounded"


def test_resource_limit_reached_carries_context():
    exc = ResourceLimitReached("boom", reason=LimitReason.TIME,
                               partial=[1, 2])
    assert exc.reason is LimitReason.TIME
    assert exc.partial == [1, 2]
    assert exc.bounds is None


# ----------------------------------------------------------------------
# Budget enforcement in the CDCL loop
# ----------------------------------------------------------------------

def test_conflict_limit_sets_reason():
    s = _pigeonhole(6)
    assert s.solve(limits=Limits(max_conflicts=1)) is None
    assert s.limit_reason is LimitReason.CONFLICTS
    # The solver stays usable: the same instance decides unbounded.
    assert s.solve() is False
    assert s.limit_reason is None


def test_time_limit_sets_reason():
    s = _pigeonhole(9)
    started = time.monotonic()
    assert s.solve(limits=Limits(max_time=0.05)) is None
    elapsed = time.monotonic() - started
    assert s.limit_reason is LimitReason.TIME
    # Poll cadence is every 128 loop iterations: generous slack, but
    # nowhere near the minutes PHP(10,9) would actually take.
    assert elapsed < 5.0


def test_propagation_limit_sets_reason():
    s = _pigeonhole(6)
    assert s.solve(limits=Limits(max_propagations=10)) is None
    assert s.limit_reason is LimitReason.PROPAGATIONS


def test_memory_limit_sets_reason():
    s = _pigeonhole(6)
    # The instance's clause estimate alone exceeds a zero-MB budget.
    assert s.solve(limits=Limits(max_memory_mb=0.0001)) is None
    assert s.limit_reason is LimitReason.MEMORY


def test_interrupt_is_sticky_until_cleared():
    s = _pigeonhole(6)
    s.interrupt()
    assert s.interrupted
    assert s.solve() is None
    assert s.limit_reason is LimitReason.INTERRUPT
    # Sticky: a second solve without clearing is also abandoned.
    assert s.solve() is None
    s.clear_interrupt()
    assert not s.interrupted
    assert s.solve() is False


def test_legacy_max_conflicts_merges_with_limits():
    s = _pigeonhole(6)
    # The stricter of the two bounds wins.
    assert s.solve(max_conflicts=10_000_000,
                   limits=Limits(max_conflicts=1)) is None
    assert s.limit_reason is LimitReason.CONFLICTS


# ----------------------------------------------------------------------
# Determinism: a budget that does not bind must not change the answer
# ----------------------------------------------------------------------

def test_completing_under_conflict_limit_is_identical():
    baseline = _pigeonhole(5)
    assert baseline.solve() is False
    needed = baseline.stats.conflicts

    limited = _pigeonhole(5)
    outcome = limited.solve(limits=Limits(max_conflicts=needed + 10))
    assert outcome is False
    assert limited.limit_reason is None
    assert limited.stats.conflicts == needed
    assert limited.stats.decisions == baseline.stats.decisions
    assert limited.stats.propagations == baseline.stats.propagations


def test_completing_under_generous_limits_is_identical():
    baseline = _pigeonhole(4)
    assert baseline.solve() is False

    limited = _pigeonhole(4)
    generous = Limits(max_time=600.0, max_conflicts=10_000_000,
                      max_propagations=10_000_000, max_memory_mb=4096.0)
    assert limited.solve(limits=generous) is False
    assert limited.limit_reason is None
    assert limited.stats.conflicts == baseline.stats.conflicts
    assert limited.stats.decisions == baseline.stats.decisions
