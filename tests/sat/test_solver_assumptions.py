"""Solving under assumptions and unsat-core extraction."""

import random

from repro.sat import SatSolver
from tests.conftest import brute_force_sat, random_cnf


def test_assumptions_restrict_models():
    s = SatSolver()
    s.add_clause([1, 2])
    assert s.solve(assumptions=[-1]) is True
    assert s.model_value(2)
    assert s.solve(assumptions=[-2]) is True
    assert s.model_value(1)
    assert s.solve(assumptions=[-1, -2]) is False


def test_solver_usable_after_unsat_assumptions():
    s = SatSolver()
    s.add_clause([1, 2])
    assert s.solve(assumptions=[-1, -2]) is False
    assert s.solve() is True


def test_core_is_subset_of_assumptions():
    s = SatSolver()
    s.add_clause([-1, 3])
    s.add_clause([-2, -3])
    assert s.solve(assumptions=[1, 2, 5]) is False
    core = s.core()
    assert set(core) <= {1, 2, 5}
    assert core  # non-empty


def test_core_excludes_irrelevant_assumptions():
    s = SatSolver()
    s.add_clause([-1])
    assert s.solve(assumptions=[1, 7]) is False
    assert s.core() == [1]


def test_contradictory_assumption_pair_in_core():
    s = SatSolver()
    s.add_clause([1, 2])  # make the vars known
    assert s.solve(assumptions=[1, -1]) is False
    assert set(s.core()) == {1, -1}


def test_seeded_fuzz_assumptions():
    rng = random.Random(7)
    for _ in range(150):
        n, clauses = random_cnf(rng, max_vars=7, max_clauses=20)
        assumptions = []
        for v in range(1, n + 1):
            roll = rng.random()
            if roll < 0.2:
                assumptions.append(v)
            elif roll < 0.4:
                assumptions.append(-v)
        solver = SatSolver()
        ok = all(solver.add_clause(c) for c in clauses)
        result = solver.solve(assumptions=assumptions) if ok else False
        expected = brute_force_sat(
            n, clauses + [[a] for a in assumptions])
        assert result == expected
        if not result and ok:
            core = solver.core()
            assert set(core) <= set(assumptions)
            # The core itself must be unsatisfiable with the clauses.
            assert not brute_force_sat(n, clauses + [[a] for a in core])
