"""Unit tests for the CNF container."""

import pytest

from repro.sat import CNF


def test_new_var_sequence():
    cnf = CNF()
    assert cnf.new_var() == 1
    assert cnf.new_var() == 2
    assert cnf.num_vars == 2


def test_new_vars_bulk():
    cnf = CNF()
    assert cnf.new_vars(3) == [1, 2, 3]
    with pytest.raises(ValueError):
        cnf.new_vars(-1)


def test_add_clause_grows_num_vars():
    cnf = CNF()
    cnf.add_clause([4, -2])
    assert cnf.num_vars == 4
    assert len(cnf) == 1


def test_tautologies_are_dropped():
    cnf = CNF()
    cnf.add_clause([1, -1])
    assert len(cnf) == 0


def test_constructor_with_clauses():
    cnf = CNF(clauses=[[1, 2], [-1]])
    assert len(cnf) == 2
    assert cnf.num_vars == 2


def test_copy_is_independent():
    cnf = CNF(clauses=[[1, 2]])
    dup = cnf.copy()
    dup.add_clause([3])
    assert len(cnf) == 1
    assert len(dup) == 2


def test_evaluate():
    cnf = CNF(clauses=[[1, -2], [2, 3]])
    assert cnf.evaluate([None, True, False, True])
    assert not cnf.evaluate([None, False, True, False])


def test_negative_num_vars_rejected():
    with pytest.raises(ValueError):
        CNF(num_vars=-1)


def test_iteration_yields_clauses():
    cnf = CNF(clauses=[[1], [2, -3]])
    assert sorted(map(tuple, cnf)) == [(1,), (2, -3)]


def test_extend_adds_all():
    cnf = CNF()
    cnf.extend([[1, 2], [-1], [2, 3]])
    assert len(cnf) == 3
    assert cnf.num_vars == 3
