"""DRUP-style proof logging and the independent RUP checker."""

import pytest

from repro.sat import SatSolver
from repro.sat.proof import ProofChecker, ProofError, check_unsat_proof


def _pigeonhole_solver(holes, proof=True):
    solver = SatSolver()
    if proof:
        solver.enable_proof()
    P = {}
    v = 0
    for p in range(holes + 1):
        for h in range(holes):
            v += 1
            P[p, h] = v
    for p in range(holes + 1):
        solver.add_clause([P[p, h] for h in range(holes)])
    for h in range(holes):
        for p1 in range(holes + 1):
            for p2 in range(p1 + 1, holes + 1):
                solver.add_clause([-P[p1, h], -P[p2, h]])
    return solver


@pytest.mark.parametrize("holes", [2, 3, 4, 5])
def test_pigeonhole_proofs_check(holes):
    solver = _pigeonhole_solver(holes)
    assert solver.solve() is False
    originals, learned = solver.proof
    assert check_unsat_proof(originals, learned)


def test_trivial_unsat_proof():
    solver = SatSolver()
    solver.enable_proof()
    solver.add_clause([1])
    solver.add_clause([-1])
    assert solver.solve() is False
    originals, learned = solver.proof
    assert check_unsat_proof(originals, learned)


def test_proof_disabled_by_default():
    solver = SatSolver()
    solver.add_clause([1])
    assert solver.proof is None


def test_enable_proof_after_clauses_rejected():
    solver = SatSolver()
    solver.add_clause([1])
    with pytest.raises(RuntimeError):
        solver.enable_proof()


def test_non_rup_step_rejected():
    solver = _pigeonhole_solver(4)
    assert solver.solve() is False
    originals, learned = solver.proof
    corrupted = [[1]] + [list(c) for c in learned]
    with pytest.raises(ProofError):
        check_unsat_proof(originals, corrupted)


def test_incomplete_proof_rejected():
    solver = _pigeonhole_solver(4)
    assert solver.solve() is False
    originals, learned = solver.proof
    # Drop the tail of the proof: the final conflict can no longer be
    # derived by unit propagation alone.
    truncated = [list(c) for c in learned[: len(learned) // 4]]
    with pytest.raises(ProofError):
        check_unsat_proof(originals, truncated)


def test_checker_rup_semantics():
    checker = ProofChecker(3)
    checker.add_clause([1, 2])
    checker.add_clause([-1, -2])
    # [1] is implied-by-case-split territory but not RUP: assuming ¬1
    # propagates 2 and stops without conflict.
    assert not checker.is_rup([1])
    checker2 = ProofChecker(3)
    checker2.add_clause([1, 2])
    checker2.add_clause([-1, 3])
    checker2.add_clause([-2, 3])
    # [3] IS RUP here: ¬3 forces ¬1 and ¬2, conflicting with (1 ∨ 2).
    assert checker2.is_rup([3])


def test_checker_on_contradictory_db():
    checker = ProofChecker(1)
    checker.add_clause([1])
    checker.add_clause([-1])
    assert checker.is_rup([])


def test_facade_proof_validation():
    from repro.smt import Bool, Not, Result, Solver
    a = Bool("a")
    solver = Solver(produce_proof=True)
    solver.add(a, Not(a))
    assert solver.check() == Result.UNSAT
    assert solver.validate_unsat_proof()


def test_facade_proof_requires_flag():
    from repro.smt import Bool, Not, Result, Solver
    solver = Solver()
    solver.add(Bool("a"), Not(Bool("a")))
    assert solver.check() == Result.UNSAT
    with pytest.raises(RuntimeError):
        solver.validate_unsat_proof()


def test_analyzer_certify_resilient_verdicts():
    from repro.cases import case_analyzer
    from repro.core import ResiliencySpec
    analyzer = case_analyzer("fig3")
    for spec in (ResiliencySpec.observability(k1=1, k2=1),
                 ResiliencySpec.secured_observability(k1=1, k2=0)):
        result = analyzer.verify(spec, certify=True)
        assert result.is_resilient
        assert result.details["proof_checked"] is True
