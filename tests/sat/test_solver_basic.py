"""Deterministic unit tests for the CDCL solver."""

import pytest

from repro.sat import SatSolver
from repro.sat.solver import _luby


def test_empty_formula_is_sat():
    assert SatSolver().solve() is True


def test_unit_propagation_chain():
    s = SatSolver()
    s.add_clause([1])
    s.add_clause([-1, 2])
    s.add_clause([-2, 3])
    assert s.solve() is True
    assert s.model_value(1) and s.model_value(2) and s.model_value(3)


def test_simple_unsat():
    s = SatSolver()
    s.add_clause([1])
    assert s.add_clause([-1]) is False
    assert s.solve() is False


def test_empty_clause_poisons_solver():
    s = SatSolver()
    assert s.add_clause([]) is False
    assert s.solve() is False
    assert s.add_clause([1]) is False


def test_model_satisfies_clauses():
    clauses = [[1, 2, 3], [-1, -2], [-2, -3], [-1, -3], [2, 3]]
    s = SatSolver()
    for clause in clauses:
        s.add_clause(clause)
    assert s.solve() is True
    for clause in clauses:
        assert any(s.model_value(l) for l in clause)


def test_model_access_requires_sat():
    s = SatSolver()
    with pytest.raises(RuntimeError):
        _ = s.model


def test_incremental_solving():
    s = SatSolver()
    s.add_clause([1, 2])
    assert s.solve() is True
    s.add_clause([-1])
    assert s.solve() is True
    assert s.model_value(2)
    s.add_clause([-2])
    assert s.solve() is False


def test_max_conflicts_budget_returns_none():
    # A hard pigeonhole instance cannot finish within one conflict.
    s = SatSolver()
    holes = 6
    P = {}
    v = 0
    for p in range(holes + 1):
        for h in range(holes):
            v += 1
            P[p, h] = v
    for p in range(holes + 1):
        s.add_clause([P[p, h] for h in range(holes)])
    for h in range(holes):
        for p1 in range(holes + 1):
            for p2 in range(p1 + 1, holes + 1):
                s.add_clause([-P[p1, h], -P[p2, h]])
    assert s.solve(max_conflicts=1) is None
    # And it is solvable without the budget.
    assert s.solve() is False


def test_pigeonhole_unsat():
    for holes in (2, 3, 4):
        s = SatSolver()
        P = {}
        v = 0
        for p in range(holes + 1):
            for h in range(holes):
                v += 1
                P[p, h] = v
        for p in range(holes + 1):
            s.add_clause([P[p, h] for h in range(holes)])
        for h in range(holes):
            for p1 in range(holes + 1):
                for p2 in range(p1 + 1, holes + 1):
                    s.add_clause([-P[p1, h], -P[p2, h]])
        assert s.solve() is False


def test_luby_sequence_prefix():
    assert [_luby(i) for i in range(9)] == [1, 1, 2, 1, 1, 2, 4, 1, 1]


def test_stats_are_tracked():
    s = SatSolver()
    s.add_clause([1, 2])
    s.add_clause([-1, 2])
    s.add_clause([1, -2])
    s.add_clause([-1, -2, 3])
    assert s.solve() is True
    stats = s.stats.as_dict()
    assert stats["propagations"] >= 1


def test_add_clause_at_nonzero_level_rejected():
    s = SatSolver()
    s.add_clause([1, 2])
    s._new_decision_level()
    with pytest.raises(RuntimeError):
        s.add_clause([3])


def test_learned_clause_db_reduction_triggers():
    """A hard instance must exercise clause learning, restarts, and DB
    reduction without losing soundness."""
    import random
    rng = random.Random(99)
    s = SatSolver()
    n = 60
    m = int(4.2 * n)  # near the random-3SAT threshold
    clauses = []
    for _ in range(m):
        vs = rng.sample(range(1, n + 1), 3)
        clause = [v if rng.random() < 0.5 else -v for v in vs]
        clauses.append(clause)
        s.add_clause(clause)
    outcome = s.solve()
    assert outcome in (True, False)
    if outcome:
        for clause in clauses:
            assert any(s.model_value(l) for l in clause)
    stats = s.stats.as_dict()
    assert stats["conflicts"] > 0
    assert stats["learned_clauses"] > 0


def test_many_incremental_rounds():
    """Alternating adds and solves must stay consistent."""
    import random
    rng = random.Random(5)
    s = SatSolver()
    n = 20
    added = []
    for _ in range(100):
        clause = [v if rng.random() < 0.5 else -v
                  for v in rng.sample(range(1, n + 1), 3)]
        if not s.add_clause(clause):
            break
        added.append(clause)
        result = s.solve()
        if result is False:
            break
        for c in added:
            assert any(s.model_value(l) for l in c)
