"""AllSAT enumeration with projection."""

import itertools

import pytest

from repro.sat import SatSolver, count_models, enumerate_models
from repro.sat.enumeration import drive_enumeration
from repro.sat.limits import LimitReason, Limits, ResourceLimitReached


def _fresh(clauses, num_vars):
    s = SatSolver()
    while s.num_vars < num_vars:
        s.new_var()
    for c in clauses:
        s.add_clause(c)
    return s


def test_enumerate_all_models_of_or():
    s = _fresh([[1, 2]], 2)
    models = list(enumerate_models(s, [1, 2]))
    assert len(models) == 3
    assert sorted(map(tuple, models)) == sorted(
        {(1, 2), (1, -2), (-1, 2)})


def test_projection_collapses_irrelevant_vars():
    # var 3 is free; projecting onto {1} should give at most 2 models.
    s = _fresh([[1, 2], [3, -3, 2]], 3)
    models = list(enumerate_models(s, [1]))
    assert len(models) <= 2


def test_count_models_matches_truth_table():
    clauses = [[1, 2, 3], [-1, -2]]
    expected = 0
    for bits in itertools.product([False, True], repeat=3):
        if all(any(bits[abs(l) - 1] == (l > 0) for l in c)
               for c in clauses):
            expected += 1
    s = _fresh(clauses, 3)
    assert count_models(s, [1, 2, 3]) == expected


def test_limit_truncates():
    s = _fresh([], 3)
    models = list(enumerate_models(s, [1, 2, 3], limit=5))
    assert len(models) == 5


def test_enumeration_on_unsat_is_empty():
    s = _fresh([[1], [-1]], 1)
    assert list(enumerate_models(s, [1])) == []


def test_budget_exhaustion_raises():
    holes = 6
    s = SatSolver()
    P = {}
    v = 0
    for p in range(holes + 1):
        for h in range(holes):
            v += 1
            P[p, h] = v
    for p in range(holes + 1):
        s.add_clause([P[p, h] for h in range(holes)])
    for h in range(holes):
        for p1 in range(holes + 1):
            for p2 in range(p1 + 1, holes + 1):
                s.add_clause([-P[p1, h], -P[p2, h]])
    with pytest.raises(RuntimeError):
        list(enumerate_models(s, [1], max_conflicts_per_model=1))


def _pigeonhole_solver(holes=6):
    s = SatSolver()
    P = {}
    v = 0
    for p in range(holes + 1):
        for h in range(holes):
            v += 1
            P[p, h] = v
    for p in range(holes + 1):
        s.add_clause([P[p, h] for h in range(holes)])
    for h in range(holes):
        for p1 in range(holes + 1):
            for p2 in range(p1 + 1, holes + 1):
                s.add_clause([-P[p1, h], -P[p2, h]])
    return s


def test_budget_exhaustion_salvages_partial_models():
    # Free vars 1-2 admit quick models; the adjoined pigeonhole core
    # never conflicts while they flip, so after the first few models
    # the blocking clauses force the solver into the hard core and a
    # one-conflict budget expires mid-enumeration.
    s = _pigeonhole_solver()
    with pytest.raises(ResourceLimitReached) as excinfo:
        list(enumerate_models(s, [1], max_conflicts_per_model=1))
    exc = excinfo.value
    assert isinstance(exc, RuntimeError)
    assert exc.reason is LimitReason.CONFLICTS
    assert isinstance(exc.partial, list)
    assert "enumeration" in str(exc)


def test_limits_object_bounds_each_model():
    s = _pigeonhole_solver()
    with pytest.raises(ResourceLimitReached) as excinfo:
        list(enumerate_models(s, [1], limits=Limits(max_conflicts=1)))
    assert excinfo.value.reason is LimitReason.CONFLICTS


def test_drive_enumeration_partial_carries_yielded_items():
    answers = iter([True, True, None])
    items = iter(["a", "b"])
    seen = []
    gen = drive_enumeration(
        check=lambda: next(answers),
        extract=lambda: next(items),
        block=lambda item: True,
        what="demo",
        limit_reason=lambda: LimitReason.TIME,
    )
    with pytest.raises(ResourceLimitReached) as excinfo:
        for item in gen:
            seen.append(item)
    assert seen == ["a", "b"]
    assert excinfo.value.partial == ["a", "b"]
    assert excinfo.value.reason is LimitReason.TIME
    assert "demo" in str(excinfo.value)


def test_drive_enumeration_block_can_stop_early():
    answers = iter([True, True])
    items = iter(["a", "b"])
    out = list(drive_enumeration(
        check=lambda: next(answers),
        extract=lambda: next(items),
        block=lambda item: False,
    ))
    assert out == ["a"]


def test_drive_enumeration_limit_bounds_results():
    out = list(drive_enumeration(
        check=lambda: True,
        extract=lambda: "x",
        block=lambda item: True,
        limit=4,
    ))
    assert out == ["x"] * 4


def test_enumerate_filtered():
    from repro.sat.enumeration import enumerate_filtered
    s = _fresh([[1, 2]], 2)
    kept = enumerate_filtered(s, [1, 2], keep=lambda cube: cube[0] > 0)
    # Only models with var 1 true survive the filter.
    assert all(cube[0] == 1 for cube in kept)
    assert len(kept) == 2


def test_blocking_is_permanent():
    s = _fresh([], 2)
    list(enumerate_models(s, [1, 2]))
    # All four assignments are now blocked.
    assert s.solve() is False
