"""Randomized cross-validation of the solver against brute force."""

import random

from hypothesis import given, settings, strategies as st

from repro.sat import SatSolver
from tests.conftest import brute_force_sat, random_cnf


def test_seeded_fuzz_against_brute_force():
    rng = random.Random(20160628)
    for _ in range(250):
        n, clauses = random_cnf(rng)
        solver = SatSolver()
        ok = all(solver.add_clause(c) for c in clauses)
        result = solver.solve() if ok else False
        assert result == brute_force_sat(n, clauses)
        if result:
            for clause in clauses:
                assert any(solver.model_value(l) for l in clause)


@st.composite
def cnf_instances(draw):
    n = draw(st.integers(min_value=1, max_value=6))
    m = draw(st.integers(min_value=1, max_value=20))
    clauses = []
    for _ in range(m):
        width = draw(st.integers(min_value=1, max_value=3))
        clause = []
        for _ in range(width):
            v = draw(st.integers(min_value=1, max_value=n))
            sign = draw(st.booleans())
            clause.append(v if sign else -v)
        clauses.append(clause)
    return n, clauses


@given(cnf_instances())
@settings(max_examples=150, deadline=None)
def test_hypothesis_agreement_with_brute_force(instance):
    n, clauses = instance
    solver = SatSolver()
    ok = all(solver.add_clause(c) for c in clauses)
    result = solver.solve() if ok else False
    assert result == brute_force_sat(n, clauses)


@given(cnf_instances(), st.integers(min_value=0, max_value=2 ** 6 - 1))
@settings(max_examples=100, deadline=None)
def test_hypothesis_blocked_model_is_not_refound(instance, mask):
    """Blocking a satisfying assignment and re-solving never returns it."""
    n, clauses = instance
    solver = SatSolver()
    while solver.num_vars < n:
        solver.new_var()
    ok = all(solver.add_clause(c) for c in clauses)
    if not ok or not solver.solve():
        return
    model_lits = [v if solver.model_value(v) else -v
                  for v in range(1, n + 1)]
    solver.add_clause([-l for l in model_lits])
    if solver.solve():
        new_lits = [v if solver.model_value(v) else -v
                    for v in range(1, n + 1)]
        assert new_lits != model_lits
