"""Scenario 1 (§IV-B): k1,k2-resilient observability on the 5-bus case.

Each test asserts a fact the paper reports verbatim.
"""

import pytest

from repro.cases import case_analyzer, case_problem
from repro.core import ResiliencySpec, Status


@pytest.fixture(scope="module")
def fig3():
    return case_analyzer("fig3")


@pytest.fixture(scope="module")
def fig4():
    return case_analyzer("fig4")


def test_problem_shape():
    problem = case_problem()
    assert problem.num_states == 5
    assert problem.num_measurements == 14
    # Forward/backward pairs of lines 1-2 and 4-5 share components.
    assert sorted(len(g) for g in problem.unique_groups).count(2) == 2


def test_fig3_11_resilient_observable(fig3):
    """Paper: "The system is (1,1)-resilient observable." (unsat)"""
    result = fig3.verify(ResiliencySpec.observability(k1=1, k2=1))
    assert result.status is Status.RESILIENT


def test_fig3_21_threat_vector_ied2_ied7_rtu11(fig3):
    """Paper: at (2,1) "if IED 2, IED 7, and RTU 11 are unavailable,
    then the observability fails"."""
    spec = ResiliencySpec.observability(k1=2, k2=1)
    vectors = fig3.enumerate_threat_vectors(spec)
    failure_sets = {tuple(sorted(v.failed_devices)) for v in vectors}
    assert (2, 7, 11) in failure_sets


def test_fig3_21_has_nine_threat_vectors(fig3):
    """Paper: "there are another 8 different threat vectors" — 9 total."""
    spec = ResiliencySpec.observability(k1=2, k2=1)
    vectors = fig3.enumerate_threat_vectors(spec)
    assert len(vectors) == 9


def test_fig3_tolerates_three_ied_failures(fig3):
    """Paper: "the system can tolerate up to the failures of 3 IEDs"."""
    assert fig3.verify(
        ResiliencySpec.observability(k1=3, k2=0)).is_resilient
    assert not fig3.verify(
        ResiliencySpec.observability(k1=4, k2=0)).is_resilient


def test_fig4_11_resiliency_fails(fig4):
    """Paper: with RTU 9 re-homed to RTU 12, "(1,1)-resiliency
    verification fails"; the reported model is {IED 4, RTU 12}."""
    spec = ResiliencySpec.observability(k1=1, k2=1)
    result = fig4.verify(spec, minimize=False)
    assert result.status is Status.THREAT_FOUND
    # The paper's reported vector is a valid threat in our model too.
    assert fig4.reference.is_threat(spec, {4, 12})


def test_fig4_rtu12_alone_breaks_observability(fig4):
    """Paper: "If RTU 12 fails, there is no way to observe the system"."""
    result = fig4.verify(ResiliencySpec.observability(k1=0, k2=1))
    assert result.status is Status.THREAT_FOUND
    assert result.threat.failed_rtus == frozenset({12})
    assert not fig4.reference.observable({12})


def test_fig4_maximally_30_resilient(fig4):
    """Paper: "This system is maximally (3, 0)-resilient observable"."""
    assert fig4.verify(
        ResiliencySpec.observability(k1=3, k2=0)).is_resilient
    assert not fig4.verify(
        ResiliencySpec.observability(k1=4, k2=0)).is_resilient
    assert not fig4.verify(
        ResiliencySpec.observability(k1=0, k2=1)).is_resilient


def test_fig3_threat_vectors_validate_against_reference(fig3):
    spec = ResiliencySpec.observability(k1=2, k2=1)
    for vector in fig3.enumerate_threat_vectors(spec):
        assert fig3.reference.is_threat(spec, vector.failed_devices)
        # And they are minimal: restoring any device restores the
        # property or keeps it broken only via a different vector.
        for device in vector.failed_devices:
            smaller = set(vector.failed_devices) - {device}
            assert fig3.reference.property_holds(spec, smaller)


def test_fig3_enumeration_agrees_with_brute_force(fig3):
    spec = ResiliencySpec.observability(k1=2, k2=1)
    enumerated = {tuple(sorted(v.failed_devices))
                  for v in fig3.enumerate_threat_vectors(spec)}
    brute = {tuple(sorted(t))
             for t in fig3.reference.brute_force_threats(spec)}
    assert enumerated == brute
