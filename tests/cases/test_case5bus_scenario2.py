"""Scenario 2 (§IV-C): k1,k2-resilient *secured* observability."""

import pytest

from repro.cases import (
    MEASUREMENT_MAP,
    case_analyzer,
    fig3_network,
)
from repro.core import ResiliencySpec, Status


@pytest.fixture(scope="module")
def fig3():
    return case_analyzer("fig3")


@pytest.fixture(scope="module")
def fig4():
    return case_analyzer("fig4")


def test_fig3_11_secured_resiliency_fails(fig3):
    """Paper: "the system is not (1,1)-resilient in terms of secured
    observability, although it is (1,1)-resilient observable"."""
    secured = fig3.verify(ResiliencySpec.secured_observability(k1=1, k2=1))
    plain = fig3.verify(ResiliencySpec.observability(k1=1, k2=1))
    assert secured.status is Status.THREAT_FOUND
    assert plain.status is Status.RESILIENT


def test_fig3_threat_vector_ied3_rtu11(fig3):
    """Paper: "if IED 3 and RTU 11 are unavailable, it is not possible
    to observe the system securely"."""
    spec = ResiliencySpec.secured_observability(k1=1, k2=1)
    vectors = fig3.enumerate_threat_vectors(spec)
    failure_sets = {tuple(sorted(v.failed_devices)) for v in vectors}
    assert (3, 11) in failure_sets


def test_fig3_five_threat_vectors(fig3):
    """Paper: "There are 4 more threat vectors" — 5 total."""
    spec = ResiliencySpec.secured_observability(k1=1, k2=1)
    assert len(fig3.enumerate_threat_vectors(spec)) == 5


def test_fig3_single_failure_resilient(fig3):
    """Paper: "(1,0) or (0,1) … the model gives unsat result"."""
    assert fig3.verify(
        ResiliencySpec.secured_observability(k1=1, k2=0)).is_resilient
    assert fig3.verify(
        ResiliencySpec.secured_observability(k1=0, k2=1)).is_resilient


def test_insecure_sources_are_ied1_and_ied4(fig3):
    """Paper: some measurements are "not data integrity protected" —
    in our reconstruction IED 1 (hmac-128 hop) and IED 4 (no profile /
    hmac-128 uplink) can never deliver securely."""
    network = fig3_network()
    assert network.secured_paths(1) == []
    assert network.secured_paths(4) == []
    for ied in (2, 3, 5, 6, 7, 8):
        assert network.secured_paths(ied), ied


def test_fig4_one_rtu_failure_breaks_secured(fig4):
    """Paper: "the system is not resilient any more for one RTU
    failure. However, there is only one threat vector (unavailability
    of RTU 12)"."""
    spec = ResiliencySpec.secured_observability(k1=0, k2=1)
    vectors = fig4.enumerate_threat_vectors(spec)
    assert len(vectors) == 1
    assert vectors[0].failed_rtus == frozenset({12})


def test_fig3_secured_enumeration_agrees_with_brute_force(fig3):
    spec = ResiliencySpec.secured_observability(k1=1, k2=1)
    enumerated = {tuple(sorted(v.failed_devices))
                  for v in fig3.enumerate_threat_vectors(spec)}
    brute = {tuple(sorted(t))
             for t in fig3.reference.brute_force_threats(spec)}
    assert enumerated == brute


def test_measurement_map_covers_all_fourteen():
    assigned = sorted(z for msrs in MEASUREMENT_MAP.values() for z in msrs)
    assert assigned == list(range(1, 15))


def test_fig3_bad_data_detectability(fig3):
    """Extension: with IED 1 and IED 4 insecure, several states lack
    double secured coverage, so (k,1)-resilient bad-data detectability
    cannot hold even at k = 0 — unless r = 0."""
    result = fig3.verify(ResiliencySpec.bad_data_detectability(r=0, k=0))
    assert result.status is Status.RESILIENT
    result = fig3.verify(ResiliencySpec.bad_data_detectability(r=1, k=0))
    # Validated against the reference evaluator either way.
    expected = fig3.reference.bad_data_detectable([], r=1)
    assert result.is_resilient == expected
