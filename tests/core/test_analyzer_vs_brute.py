"""Randomized cross-validation: SAT verdicts against brute force."""

import pytest

from repro.core import ObservabilityProblem, ResiliencySpec, ScadaAnalyzer, Status
from repro.grid import ieee14
from repro.scada import GeneratorConfig, generate_scada


def _analyzer(seed, secure_fraction=0.8, hierarchy=1):
    syn = generate_scada(ieee14(), GeneratorConfig(
        measurement_fraction=0.55, hierarchy_level=hierarchy, seed=seed,
        secure_fraction=secure_fraction))
    problem = ObservabilityProblem.from_table(syn.table)
    return ScadaAnalyzer(syn.network, problem)


@pytest.mark.parametrize("seed", [0, 1, 2, 3])
@pytest.mark.parametrize("k", [0, 1, 2])
def test_observability_verdicts_match_brute_force(seed, k):
    analyzer = _analyzer(seed)
    spec = ResiliencySpec.observability(k=k)
    result = analyzer.verify(spec)
    brute = analyzer.reference.brute_force_threats(spec,
                                                   minimal_only=False)
    expected = Status.THREAT_FOUND if brute else Status.RESILIENT
    assert result.status == expected
    if result.threat is not None:
        assert analyzer.reference.is_threat(spec,
                                            result.threat.failed_devices)


@pytest.mark.parametrize("seed", [0, 1, 2])
@pytest.mark.parametrize("k", [0, 1])
def test_secured_verdicts_match_brute_force(seed, k):
    analyzer = _analyzer(seed, secure_fraction=0.7)
    spec = ResiliencySpec.secured_observability(k=k)
    result = analyzer.verify(spec)
    brute = analyzer.reference.brute_force_threats(spec,
                                                   minimal_only=False)
    expected = Status.THREAT_FOUND if brute else Status.RESILIENT
    assert result.status == expected


@pytest.mark.parametrize("seed", [0, 1])
def test_split_budget_verdicts_match_brute_force(seed):
    analyzer = _analyzer(seed, hierarchy=2)
    for k1, k2 in [(1, 0), (0, 1), (1, 1), (2, 1)]:
        spec = ResiliencySpec.observability(k1=k1, k2=k2)
        result = analyzer.verify(spec)
        brute = analyzer.reference.brute_force_threats(
            spec, minimal_only=False)
        expected = Status.THREAT_FOUND if brute else Status.RESILIENT
        assert result.status == expected, (k1, k2)


@pytest.mark.parametrize("seed", [0, 1])
def test_minimal_enumeration_matches_brute_force(seed):
    analyzer = _analyzer(seed)
    spec = ResiliencySpec.observability(k=2)
    enumerated = {tuple(sorted(t.failed_devices))
                  for t in analyzer.enumerate_threat_vectors(spec)}
    brute = {tuple(sorted(t))
             for t in analyzer.reference.brute_force_threats(spec)}
    assert enumerated == brute


@pytest.mark.parametrize("seed", [0, 1, 2])
def test_bad_data_verdicts_match_brute_force(seed):
    analyzer = _analyzer(seed, secure_fraction=1.0)
    for r, k in [(0, 0), (0, 1), (1, 0)]:
        spec = ResiliencySpec.bad_data_detectability(r=r, k=k)
        result = analyzer.verify(spec)
        brute = analyzer.reference.brute_force_threats(
            spec, minimal_only=False)
        expected = Status.THREAT_FOUND if brute else Status.RESILIENT
        assert result.status == expected, (r, k)
