"""Resiliency specification types."""

import pytest

from repro.core import FailureBudget, Property, ResiliencySpec


def test_total_budget():
    budget = FailureBudget.total(3)
    assert not budget.is_split
    assert budget.max_failures == 3
    assert budget.describe() == "3"


def test_split_budget():
    budget = FailureBudget.split(2, 1)
    assert budget.is_split
    assert budget.max_failures == 3
    assert budget.describe() == "(2, 1)"


def test_budget_validation():
    with pytest.raises(ValueError):
        FailureBudget()
    with pytest.raises(ValueError):
        FailureBudget(k=1, k1=1, k2=1)
    with pytest.raises(ValueError):
        FailureBudget(k1=1)
    with pytest.raises(ValueError):
        FailureBudget(k=-1)
    with pytest.raises(ValueError):
        FailureBudget.split(-1, 0)


def test_spec_constructors():
    spec = ResiliencySpec.observability(k=2)
    assert spec.property is Property.OBSERVABILITY
    assert not spec.property.uses_security
    spec = ResiliencySpec.secured_observability(k1=1, k2=1)
    assert spec.property.uses_security
    spec = ResiliencySpec.bad_data_detectability(r=2, k=1)
    assert spec.r == 2


def test_spec_requires_complete_budget():
    with pytest.raises(ValueError):
        ResiliencySpec.observability()
    with pytest.raises(ValueError):
        ResiliencySpec.observability(k1=1)


def test_spec_rejects_negative_r():
    with pytest.raises(ValueError):
        ResiliencySpec.bad_data_detectability(r=-1, k=1)


def test_describe_strings():
    assert ResiliencySpec.observability(k=2).describe() == \
        "2-resilient observability"
    assert ResiliencySpec.secured_observability(k1=1, k2=0).describe() == \
        "(1, 0)-resilient secured-observability"
    text = ResiliencySpec.bad_data_detectability(r=1, k=2).describe()
    assert text.startswith("(2, 1)-resilient")


def test_spec_is_hashable():
    assert len({ResiliencySpec.observability(k=1),
                ResiliencySpec.observability(k=1)}) == 1
