"""The constraint encoder, cross-checked against the reference evaluator."""

import itertools

import pytest

from repro.core import ObservabilityProblem
from repro.core.encoder import ModelEncoder
from repro.core.reference import ReferenceEvaluator
from repro.core.specs import FailureBudget
from repro.smt import And, Not, Result, Solver


@pytest.fixture
def encoder(tiny_network, tiny_problem):
    return ModelEncoder(tiny_network, tiny_problem)


def _fix_nodes(encoder, failed):
    """Terms pinning every field device's availability."""
    terms = []
    for device in encoder.network.field_device_ids:
        node = encoder.node(device)
        terms.append(Not(node) if device in failed else node)
    return terms


def test_variables_are_stable(encoder):
    assert encoder.node(1) is encoder.node(1)
    assert encoder.delivered(2).name == "D_2"
    assert encoder.secured(2).name == "S_2"


def test_delivery_matches_reference_on_all_failure_sets(
        tiny_network, tiny_problem):
    reference = ReferenceEvaluator(tiny_network, tiny_problem)
    field = tiny_network.field_device_ids
    for secured in (False, True):
        for size in range(len(field) + 1):
            for failed in itertools.combinations(field, size):
                encoder = ModelEncoder(tiny_network, tiny_problem)
                solver = Solver()
                solver.add(*encoder.availability_axioms())
                solver.add(*encoder.delivery_definitions(secured=secured))
                solver.add(*_fix_nodes(encoder, set(failed)))
                assert solver.check() == Result.SAT
                model = solver.model()
                expected = reference.delivered_measurements(
                    failed, secured=secured)
                var_of = encoder.secured if secured else encoder.delivered
                for z in tiny_problem.measurement_indices:
                    assert model[var_of(z)] == (z in expected), \
                        (secured, failed, z)


def test_not_observability_matches_reference(tiny_network, tiny_problem):
    reference = ReferenceEvaluator(tiny_network, tiny_problem)
    field = tiny_network.field_device_ids
    for size in range(len(field) + 1):
        for failed in itertools.combinations(field, size):
            encoder = ModelEncoder(tiny_network, tiny_problem)
            solver = Solver()
            solver.add(*encoder.availability_axioms())
            solver.add(*encoder.delivery_definitions(secured=False))
            solver.add(*_fix_nodes(encoder, set(failed)))
            solver.add(encoder.not_observability(secured=False))
            outcome = solver.check()
            expected = not reference.observable(failed)
            assert (outcome == Result.SAT) == expected, failed


def test_budget_constraint_total(encoder, tiny_network):
    solver = Solver()
    solver.add(encoder.budget_constraint(FailureBudget.total(1)))
    solver.add(Not(encoder.node(1)), Not(encoder.node(2)))
    assert solver.check() == Result.UNSAT
    solver = Solver()
    enc = ModelEncoder(encoder.network, encoder.problem)
    solver.add(enc.budget_constraint(FailureBudget.total(2)))
    solver.add(Not(enc.node(1)), Not(enc.node(2)))
    assert solver.check() == Result.SAT


def test_budget_constraint_split(tiny_network, tiny_problem):
    encoder = ModelEncoder(tiny_network, tiny_problem)
    solver = Solver()
    solver.add(encoder.budget_constraint(FailureBudget.split(1, 0)))
    solver.add(Not(encoder.node(3)))  # RTU down but k2 = 0
    assert solver.check() == Result.UNSAT


def test_unassigned_measurement_pinned_undelivered(tiny_network):
    problem = ObservabilityProblem(
        num_states=2,
        state_sets={1: [1], 2: [2], 3: [1, 2]},  # z3 has no IED
        unique_groups=[[1], [2], [3]],
    )
    encoder = ModelEncoder(tiny_network, problem)
    solver = Solver()
    solver.add(*encoder.availability_axioms())
    solver.add(*encoder.delivery_definitions(secured=False))
    solver.add(encoder.delivered(3))
    assert solver.check() == Result.UNSAT


def test_bad_data_term(tiny_network, tiny_problem):
    encoder = ModelEncoder(tiny_network, tiny_problem)
    solver = Solver()
    solver.add(*encoder.availability_axioms())
    solver.add(*encoder.delivery_definitions(secured=True))
    solver.add(*_fix_nodes(encoder, set()))
    # r = 0: state 2 has no secured measurement → not detectable.
    solver.add(encoder.not_bad_data_detectability(0))
    assert solver.check() == Result.SAT
