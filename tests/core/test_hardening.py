"""Configuration hardening (the paper's future-work synthesis)."""

import pytest

from repro.core import ResiliencySpec, ScadaAnalyzer, Status
from repro.core.hardening import Repair, harden


def test_no_repairs_needed_when_spec_holds(tiny_network, tiny_problem):
    result = harden(tiny_network, tiny_problem,
                    ResiliencySpec.observability(k=0))
    assert result.succeeded
    assert result.repairs == []
    assert "no repairs" in result.summary()


def test_security_upgrade_restores_secured_observability(
        tiny_network, tiny_problem):
    # z2's weak hop makes secured observability fail at k = 0; upgrading
    # one pair's profile must fix it.
    spec = ResiliencySpec.secured_observability(k=0)
    result = harden(tiny_network, tiny_problem, spec, allow_links=False)
    assert result.succeeded
    assert len(result.repairs) == 1
    assert result.repairs[0].kind == "upgrade-security"
    verdict = ScadaAnalyzer(result.network, tiny_problem).verify(spec)
    assert verdict.status is Status.RESILIENT


def test_fig4_single_point_of_failure_fixed_by_link():
    from repro.cases import case_problem, fig4_network
    spec = ResiliencySpec.observability(k1=0, k2=1)
    result = harden(fig4_network(), case_problem(), spec,
                    allow_upgrades=False)
    assert result.succeeded
    assert all(r.kind == "add-link" for r in result.repairs)
    verdict = ScadaAnalyzer(result.network,
                            case_problem()).verify(spec)
    assert verdict.status is Status.RESILIENT


def test_minimum_cardinality_first():
    from repro.cases import case_problem, fig4_network
    spec = ResiliencySpec.observability(k1=0, k2=1)
    result = harden(fig4_network(), case_problem(), spec)
    assert len(result.repairs) == 1  # one link suffices


def test_impossible_hardening_reports_failure(tiny_network, tiny_problem):
    # No repair can survive losing both IEDs: the data sources are gone.
    spec = ResiliencySpec.observability(k=2)
    result = harden(tiny_network, tiny_problem, spec, max_repairs=1)
    assert not result.succeeded
    assert result.network is None
    assert "no repair" in result.summary()


def test_verify_call_budget_enforced(tiny_network, tiny_problem):
    spec = ResiliencySpec.observability(k=2)
    with pytest.raises(RuntimeError):
        harden(tiny_network, tiny_problem, spec, max_repairs=2,
               max_verify_calls=1)


def test_repair_descriptions():
    assert "upgrade" in Repair("upgrade-security", (1, 2)).describe()
    assert "link" in Repair("add-link", (1, 2)).describe()
