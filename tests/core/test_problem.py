"""ObservabilityProblem construction and the row-comparison rule."""

import pytest

from repro.core import ObservabilityProblem, group_rows_by_component
from repro.grid import JacobianTable, full_measurement_plan, ieee14


def test_basic_construction():
    problem = ObservabilityProblem(
        num_states=3,
        state_sets={1: [1, 2], 2: [3]},
        unique_groups=[[1], [2]],
    )
    assert problem.num_measurements == 2
    assert problem.measurements_covering(2) == [1]
    assert list(problem.states()) == [1, 2, 3]


def test_ungrouped_measurements_become_singletons():
    problem = ObservabilityProblem(
        num_states=2, state_sets={1: [1], 2: [2]}, unique_groups=[[1]])
    assert sorted(map(tuple, problem.unique_groups)) == [(1,), (2,)]


def test_validation():
    with pytest.raises(ValueError):
        ObservabilityProblem(0, {}, [])
    with pytest.raises(ValueError):
        ObservabilityProblem(2, {1: [5]}, [])  # state out of range
    with pytest.raises(ValueError):
        ObservabilityProblem(2, {1: [1]}, [[1], [1]])  # duplicated
    with pytest.raises(ValueError):
        ObservabilityProblem(2, {1: [1]}, [[9]])  # unknown measurement


def test_group_rows_equal():
    rows = [{1: 2.0, 2: -2.0}, {1: 2.0, 2: -2.0}, {1: 3.0}]
    groups = group_rows_by_component(rows, [1, 2, 3])
    assert sorted(map(tuple, groups)) == [(1, 2), (3,)]


def test_group_rows_negated():
    rows = [{1: 2.0, 2: -2.0}, {1: -2.0, 2: 2.0}]
    groups = group_rows_by_component(rows, [1, 2])
    assert groups == [[1, 2]]


def test_group_rows_different_support_not_grouped():
    rows = [{1: 2.0, 2: -2.0}, {1: 2.0, 3: -2.0}]
    groups = group_rows_by_component(rows, [1, 2])
    assert len(groups) == 2


def test_group_rows_scaled_rows_not_grouped():
    # Same support but different magnitudes → different components.
    rows = [{1: 2.0, 2: -2.0}, {1: 4.0, 2: -4.0}]
    groups = group_rows_by_component(rows, [1, 2])
    assert len(groups) == 2


def test_from_rows():
    rows = [{1: 1.0}, {1: -1.0}, {2: 5.0}]
    problem = ObservabilityProblem.from_rows(2, rows)
    assert problem.num_measurements == 3
    assert sorted(map(tuple, problem.unique_groups)) == [(1, 2), (3,)]
    assert problem.state_sets[3] == {2}


def test_from_table_groups_flow_pairs():
    table = JacobianTable(full_measurement_plan(ieee14()))
    problem = ObservabilityProblem.from_table(table)
    sizes = sorted(len(g) for g in problem.unique_groups)
    # Every line contributes a (fwd, bwd) pair; leaf-bus injections merge
    # into their line's component (bus 8 in IEEE-14), making one group
    # of three.
    assert max(sizes) >= 2
    assert problem.num_states == 14


def test_from_table_leaf_bus_injection_redundancy():
    """Bus 8 hangs off line 7-8, so its injection row equals the
    backward flow on that line — the paper's redundancy example."""
    table = JacobianTable(full_measurement_plan(ieee14()))
    problem = ObservabilityProblem.from_table(table)
    plan = table.plan
    line78 = next(b.index for b in plan.bus_system.branches
                  if b.buses == (7, 8))
    flows = [m.index for m in plan.measurements
             if m.mtype.is_flow and m.element == line78]
    injection8 = next(m.index for m in plan.measurements
                      if not m.mtype.is_flow and m.element == 8)
    group = next(g for g in problem.unique_groups if injection8 in g)
    assert set(flows) <= set(group)
