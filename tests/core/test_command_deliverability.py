"""The command-deliverability property (extension)."""

import itertools

import pytest

from repro.cases import case_analyzer
from repro.core import Property, ResiliencySpec, ScadaAnalyzer, Status


@pytest.fixture(scope="module")
def fig3():
    return case_analyzer("fig3")


@pytest.fixture(scope="module")
def fig4():
    return case_analyzer("fig4")


def test_baseline_all_devices_commandable(fig3):
    assert fig3.reference.command_deliverable([])
    result = fig3.verify(ResiliencySpec.command_deliverability(k=0))
    assert result.status is Status.RESILIENT


def test_rtu_failure_strands_its_ieds(fig3):
    """RTU 9 down leaves IEDs 1-3 alive but uncommandable."""
    assert not fig3.reference.command_deliverable([9])
    result = fig3.verify(ResiliencySpec.command_deliverability(k=1))
    assert result.status is Status.THREAT_FOUND


def test_failed_devices_dont_count_as_stranded(fig3):
    """Failing RTU 9 *and* its IEDs leaves nothing stranded behind it,
    but RTU 10's subtree shows the same pattern elsewhere; verify the
    reference treats dead devices as out of scope."""
    # Kill RTU 9 and all its IEDs: the rest of the network is intact.
    assert fig3.reference.command_deliverable([9, 1, 2, 3])


def test_verdicts_match_brute_force(fig3):
    spec = ResiliencySpec.command_deliverability(k=1)
    field = fig3.network.field_device_ids
    brute = any(
        not fig3.reference.command_deliverable({device})
        for device in field)
    result = fig3.verify(spec)
    assert (result.status is Status.THREAT_FOUND) == brute
    if result.threat:
        assert fig3.reference.is_threat(spec, result.threat.failed_devices)


def test_brute_force_k2(fig3):
    spec = ResiliencySpec.command_deliverability(k=2)
    field = fig3.network.field_device_ids
    brute = []
    for size in (0, 1, 2):
        for combo in itertools.combinations(field, size):
            if not fig3.reference.command_deliverable(set(combo)):
                brute.append(frozenset(combo))
    result = fig3.verify(spec)
    assert (result.status is Status.THREAT_FOUND) == bool(brute)


def test_enumeration_matches_brute_force(fig3):
    spec = ResiliencySpec.command_deliverability(k=1)
    enumerated = {tuple(sorted(v.failed_devices))
                  for v in fig3.enumerate_threat_vectors(spec)}
    brute = {tuple(sorted(t))
             for t in fig3.reference.brute_force_threats(spec)}
    assert enumerated == brute


def test_fig4_rtu12_strands_more(fig4):
    """In Fig. 4, RTU 12 carries RTU 9's subtree too."""
    assert not fig4.reference.command_deliverable([12])
    result = fig4.verify(
        ResiliencySpec.command_deliverability(k1=0, k2=1))
    assert result.status is Status.THREAT_FOUND


def test_link_budget_composes(fig3):
    spec = ResiliencySpec.command_deliverability(k=0, link_k=1)
    result = fig3.verify(spec)
    # Cutting any IED uplink strands that IED.
    assert result.status is Status.THREAT_FOUND
    assert result.threat.failed_links


def test_property_enum_wiring():
    assert not Property.COMMAND_DELIVERABILITY.uses_security
    spec = ResiliencySpec.command_deliverability(k=2)
    assert "command-deliverability" in spec.describe()
