"""Result and threat-vector presentation."""

import pytest

from repro.core import ResiliencySpec, Status, ThreatVector, VerificationResult


def _vector(**kwargs):
    defaults = dict(failed_ieds=frozenset({1, 2}),
                    failed_rtus=frozenset({9}))
    defaults.update(kwargs)
    return ThreatVector(**defaults)


def test_failed_devices_union():
    vector = _vector()
    assert vector.failed_devices == frozenset({1, 2, 9})
    assert vector.size == 3


def test_size_counts_links():
    vector = _vector(failed_links=frozenset({(3, 4)}))
    assert vector.size == 4


def test_describe_default_labels():
    text = _vector().describe()
    assert "IED 1" in text and "IED 2" in text and "RTU 9" in text


def test_describe_custom_labeler():
    text = _vector().describe(lambda i: f"dev{i}")
    assert "dev1" in text and "dev9" in text


def test_describe_links():
    vector = _vector(failed_links=frozenset({(3, 4)}))
    assert "link 3-4" in vector.describe()


def test_empty_vector_message():
    vector = ThreatVector(failed_ieds=frozenset(),
                          failed_rtus=frozenset())
    assert "no failures needed" in vector.describe()


def test_result_summary_states():
    spec = ResiliencySpec.observability(k=1)
    resilient = VerificationResult(spec=spec, status=Status.RESILIENT)
    assert "HOLDS" in resilient.summary()
    assert resilient.is_resilient

    threat = VerificationResult(spec=spec, status=Status.THREAT_FOUND,
                                threat=_vector())
    assert "VIOLATED" in threat.summary()
    assert not threat.is_resilient

    unknown = VerificationResult(spec=spec, status=Status.UNKNOWN)
    assert "UNKNOWN" in unknown.summary()


def test_total_time_is_sum():
    spec = ResiliencySpec.observability(k=1)
    result = VerificationResult(spec=spec, status=Status.RESILIENT,
                                solve_time=0.25, encode_time=0.5)
    assert result.total_time == pytest.approx(0.75)


def test_repr_roundtrips_summary():
    spec = ResiliencySpec.observability(k=1)
    result = VerificationResult(spec=spec, status=Status.RESILIENT)
    assert "HOLDS" in repr(result)
