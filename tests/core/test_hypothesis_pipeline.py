"""End-to-end property tests: random small SCADA systems.

Hypothesis generates arbitrary small configurations (topology,
measurement map, security profiles) and the analyzer's verdicts are
checked against exhaustive failure-set enumeration — the strongest
statement that the SAT encoding implements exactly the paper's
predicates.
"""

from hypothesis import given, settings, strategies as st

from repro.core import (
    ObservabilityProblem,
    ResiliencySpec,
    ScadaAnalyzer,
    Status,
)
from repro.scada import CryptoProfile, Device, DeviceType, Link, ScadaNetwork

SECURITY_POOL = [
    None,                                      # no profile
    "hmac 128",                                # auth only
    "chap 64 sha2 128",                        # secured
    "rsa 2048 aes 256",                        # secured
    "des 256",                                 # broken
]


@st.composite
def small_scada(draw):
    num_ieds = draw(st.integers(min_value=2, max_value=5))
    num_rtus = draw(st.integers(min_value=1, max_value=3))
    num_states = draw(st.integers(min_value=2, max_value=4))

    ied_ids = list(range(1, num_ieds + 1))
    rtu_ids = list(range(num_ieds + 1, num_ieds + num_rtus + 1))
    mtu = num_ieds + num_rtus + 1

    links = []
    pair_security = {}
    index = 0

    def add_link(a, b):
        nonlocal index
        index += 1
        links.append(Link(index, a, b))
        profile = draw(st.sampled_from(SECURITY_POOL))
        if profile is not None:
            pair_security[(min(a, b), max(a, b))] = \
                CryptoProfile.parse_many(profile)

    # Every IED gets at least one RTU uplink; maybe a second.
    for ied in ied_ids:
        add_link(ied, draw(st.sampled_from(rtu_ids)))
        if draw(st.booleans()) and num_rtus > 1:
            other = draw(st.sampled_from(rtu_ids))
            if not any(l.node_pair == (min(ied, other), max(ied, other))
                       for l in links):
                add_link(ied, other)

    # RTU uplinks: each RTU connects to the MTU or a lower-id RTU.
    for pos, rtu in enumerate(rtu_ids):
        if pos == 0 or draw(st.booleans()):
            add_link(rtu, mtu)
        else:
            add_link(rtu, draw(st.sampled_from(rtu_ids[:pos])))

    # Measurements: 1..2 per IED, each over 1..2 states.
    measurement_map = {}
    state_sets = {}
    z = 0
    for ied in ied_ids:
        msrs = []
        for _ in range(draw(st.integers(min_value=1, max_value=2))):
            z += 1
            size = draw(st.integers(min_value=1, max_value=2))
            states = draw(st.lists(
                st.integers(min_value=1, max_value=num_states),
                min_size=size, max_size=size, unique=True))
            state_sets[z] = states
            msrs.append(z)
        measurement_map[ied] = msrs

    devices = ([Device(i, DeviceType.IED) for i in ied_ids]
               + [Device(i, DeviceType.RTU) for i in rtu_ids]
               + [Device(mtu, DeviceType.MTU)])
    network = ScadaNetwork(devices=devices, links=links,
                           measurement_map=measurement_map,
                           pair_security=pair_security)
    problem = ObservabilityProblem(num_states=num_states,
                                   state_sets=state_sets,
                                   unique_groups=[[i] for i in state_sets])
    return network, problem


@given(small_scada(), st.integers(min_value=0, max_value=3),
       st.booleans())
@settings(max_examples=60, deadline=None)
def test_verdicts_match_brute_force(system, k, secured):
    network, problem = system
    # lint=False: hypothesis freely generates degenerate configs
    # (zero-coverage states, no assured paths) on purpose.
    analyzer = ScadaAnalyzer(network, problem, lint=False)
    if secured:
        spec = ResiliencySpec.secured_observability(k=k)
    else:
        spec = ResiliencySpec.observability(k=k)
    result = analyzer.verify(spec)
    brute = analyzer.reference.brute_force_threats(spec,
                                                   minimal_only=False)
    expected = Status.THREAT_FOUND if brute else Status.RESILIENT
    assert result.status == expected
    if result.threat is not None:
        assert analyzer.reference.is_threat(spec,
                                            result.threat.failed_devices)


@given(small_scada(), st.integers(min_value=1, max_value=2))
@settings(max_examples=30, deadline=None)
def test_minimal_enumeration_matches_brute_force(system, k):
    network, problem = system
    # lint=False: hypothesis freely generates degenerate configs
    # (zero-coverage states, no assured paths) on purpose.
    analyzer = ScadaAnalyzer(network, problem, lint=False)
    spec = ResiliencySpec.observability(k=k)
    enumerated = {tuple(sorted(t.failed_devices))
                  for t in analyzer.enumerate_threat_vectors(spec)}
    brute = {tuple(sorted(t))
             for t in analyzer.reference.brute_force_threats(spec)}
    assert enumerated == brute


@given(small_scada(), st.integers(min_value=0, max_value=2),
       st.integers(min_value=0, max_value=2))
@settings(max_examples=30, deadline=None)
def test_bad_data_matches_brute_force(system, k, r):
    network, problem = system
    # lint=False: hypothesis freely generates degenerate configs
    # (zero-coverage states, no assured paths) on purpose.
    analyzer = ScadaAnalyzer(network, problem, lint=False)
    spec = ResiliencySpec.bad_data_detectability(r=r, k=k)
    result = analyzer.verify(spec)
    brute = analyzer.reference.brute_force_threats(spec,
                                                   minimal_only=False)
    expected = Status.THREAT_FOUND if brute else Status.RESILIENT
    assert result.status == expected


@given(small_scada())
@settings(max_examples=30, deadline=None)
def test_certified_unsat_proofs_always_check(system):
    network, problem = system
    # lint=False: hypothesis freely generates degenerate configs
    # (zero-coverage states, no assured paths) on purpose.
    analyzer = ScadaAnalyzer(network, problem, lint=False)
    spec = ResiliencySpec.observability(k=0)
    result = analyzer.verify(spec, certify=True)
    if result.is_resilient:
        assert result.details["proof_checked"] is True


@given(small_scada(), st.integers(min_value=0, max_value=2))
@settings(max_examples=30, deadline=None)
def test_monotonicity_in_k(system, k):
    """A threat within budget k is a threat within k+1."""
    network, problem = system
    # lint=False: hypothesis freely generates degenerate configs
    # (zero-coverage states, no assured paths) on purpose.
    analyzer = ScadaAnalyzer(network, problem, lint=False)
    small = analyzer.verify(ResiliencySpec.observability(k=k),
                            minimize=False)
    big = analyzer.verify(ResiliencySpec.observability(k=k + 1),
                          minimize=False)
    if small.status is Status.THREAT_FOUND:
        assert big.status is Status.THREAT_FOUND
