"""Link-failure contingencies (extension of the paper's model)."""

import itertools

import pytest

from repro.cases import case_analyzer
from repro.core import ResiliencySpec, ScadaAnalyzer, Status


@pytest.fixture(scope="module")
def fig3():
    return case_analyzer("fig3")


def test_link_k_zero_matches_paper_model(fig3):
    """link_k=0 admits no link failures: verdicts match link_k=None."""
    for budget in (dict(k1=1, k2=1), dict(k1=2, k2=1)):
        plain = fig3.verify(ResiliencySpec.observability(**budget))
        pinned = fig3.verify(
            ResiliencySpec.observability(**budget, link_k=0))
        assert plain.status == pinned.status


def test_single_link_failure_threats(fig3):
    """With zero device failures and one link failure, the threat
    vectors are exactly the critical links."""
    spec = ResiliencySpec.observability(k=0, link_k=1)
    vectors = fig3.enumerate_threat_vectors(spec)
    found = {tuple(sorted(v.failed_links))[0] for v in vectors}
    # Brute force over all single links.
    expected = set()
    for link in fig3.network.topology.links:
        if not fig3.reference.observable([], failed_links=[link.node_pair]):
            expected.add(link.node_pair)
    assert found == expected
    for vector in vectors:
        assert not vector.failed_devices


def test_router_uplink_is_critical(fig3):
    """Cutting the router-MTU link disconnects everything."""
    assert not fig3.reference.observable([], failed_links=[(13, 14)])
    spec = ResiliencySpec.observability(k=0, link_k=1)
    result = fig3.verify(spec)
    assert result.status is Status.THREAT_FOUND
    assert result.threat.failed_links


def test_link_failure_equivalent_to_leaf_device_failure(fig3):
    """Cutting an IED's only uplink equals failing the IED (the paper's
    argument for folding link failures into Node_i)."""
    by_link = fig3.reference.delivered_measurements(
        [], failed_links=[(1, 9)])
    by_device = fig3.reference.delivered_measurements([1])
    assert by_link == by_device


def test_combined_device_and_link_budget(fig3):
    spec = ResiliencySpec.observability(k1=1, k2=0, link_k=1)
    result = fig3.verify(spec)
    # Any verdict must agree with explicit enumeration.
    threats_exist = False
    links = [l.node_pair for l in fig3.network.topology.links]
    for ied in fig3.network.ied_ids + [None]:
        for link in links + [None]:
            failed = {ied} if ied is not None else set()
            failed_links = [link] if link is not None else []
            if not fig3.reference.property_holds(spec, failed,
                                                 failed_links):
                threats_exist = True
    assert (result.status is Status.THREAT_FOUND) == threats_exist
    if result.threat is not None:
        assert fig3.reference.is_threat(spec,
                                        result.threat.failed_devices,
                                        result.threat.failed_links)


def test_minimized_link_threats_are_minimal(fig3):
    spec = ResiliencySpec.observability(k=1, link_k=1)
    vectors = fig3.enumerate_threat_vectors(spec, limit=10)
    for vector in vectors:
        devices = set(vector.failed_devices)
        links = set(vector.failed_links)
        for device in devices:
            assert fig3.reference.property_holds(
                spec, devices - {device}, links)
        for link in links:
            assert fig3.reference.property_holds(
                spec, devices, links - {link})


def test_within_budget_rejects_unknown_links(fig3):
    spec = ResiliencySpec.observability(k=0, link_k=1)
    assert not fig3.reference.within_budget(spec, [], [(1, 2)])
    assert fig3.reference.within_budget(spec, [], [(1, 9)])
    none_spec = ResiliencySpec.observability(k=1)
    assert not fig3.reference.within_budget(none_spec, [], [(1, 9)])


def test_negative_link_k_rejected():
    with pytest.raises(ValueError):
        ResiliencySpec.observability(k=1, link_k=-1)


def test_describe_mentions_links():
    spec = ResiliencySpec.observability(k=1, link_k=2)
    assert "link" in spec.describe()
