"""The reference (non-SAT) evaluator."""

import pytest

from repro.core import ObservabilityProblem, ResiliencySpec
from repro.core.reference import ReferenceEvaluator


@pytest.fixture
def evaluator(tiny_network, tiny_problem):
    return ReferenceEvaluator(tiny_network, tiny_problem)


def test_delivery_all_alive(evaluator):
    assert evaluator.assured_delivery(1, set())
    assert evaluator.assured_delivery(2, set())
    assert evaluator.delivered_measurements([]) == {1, 2}


def test_failed_ied_does_not_deliver(evaluator):
    assert not evaluator.assured_delivery(1, {1})
    assert evaluator.delivered_measurements([1]) == {2}


def test_failed_rtu_blocks_everything(evaluator):
    assert evaluator.delivered_measurements([3]) == set()


def test_secured_delivery_respects_crypto(evaluator):
    # IED 2's hop is hmac-128: authenticated but not integrity protected.
    assert evaluator.secured_delivery(1, set())
    assert not evaluator.secured_delivery(2, set())
    assert evaluator.delivered_measurements([], secured=True) == {1}


def test_observable_baseline(evaluator):
    assert evaluator.observable([])
    # Secured observability already fails: z2 is never secured.
    assert not evaluator.observable([], secured=True)


def test_observability_needs_coverage(evaluator):
    assert not evaluator.observable([1])  # state 1 uncovered
    assert not evaluator.observable([2])


def test_bad_data_needs_redundancy(evaluator):
    # One secured measurement per state is below the r+1 = 2 threshold.
    assert not evaluator.bad_data_detectable([], r=1)
    assert evaluator.bad_data_detectable([], r=0) is False  # z2 insecure
    spec = ResiliencySpec.bad_data_detectability(r=0, k=0)
    assert not evaluator.property_holds(spec, [])


def test_within_budget_total(evaluator):
    spec = ResiliencySpec.observability(k=1)
    assert evaluator.within_budget(spec, [1])
    assert not evaluator.within_budget(spec, [1, 2])
    assert not evaluator.within_budget(spec, [4])  # MTU can't fail


def test_within_budget_split(evaluator):
    spec = ResiliencySpec.observability(k1=1, k2=0)
    assert evaluator.within_budget(spec, [1])
    assert not evaluator.within_budget(spec, [3])
    assert not evaluator.within_budget(spec, [1, 2])


def test_is_threat(evaluator):
    spec = ResiliencySpec.observability(k=1)
    assert evaluator.is_threat(spec, [1])
    assert not evaluator.is_threat(spec, [])
    assert not evaluator.is_threat(spec, [1, 2])  # over budget


def test_minimize_threat(evaluator):
    spec = ResiliencySpec.observability(k=2)
    minimal = evaluator.minimize_threat(spec, {1, 2})
    # Either single IED already breaks observability.
    assert len(minimal) == 1
    with pytest.raises(ValueError):
        evaluator.minimize_threat(spec, set())


def test_brute_force_threats(evaluator):
    spec = ResiliencySpec.observability(k=1)
    threats = evaluator.brute_force_threats(spec)
    assert sorted(map(tuple, (sorted(t) for t in threats))) == \
        [(1,), (2,), (3,)]
    raw = evaluator.brute_force_threats(spec, minimal_only=False)
    assert len(raw) == 3


def test_brute_force_split_budget(evaluator):
    spec = ResiliencySpec.observability(k1=1, k2=0)
    threats = evaluator.brute_force_threats(spec)
    assert sorted(map(tuple, (sorted(t) for t in threats))) == \
        [(1,), (2,)]
