"""Incremental analyzer: verdict parity with the fresh-encoding one."""

import pytest

from repro.core import (
    FailureBudget,
    ObservabilityProblem,
    Property,
    ResiliencySpec,
    ScadaAnalyzer,
    Status,
)
from repro.core.incremental import IncrementalAnalyzer
from repro.grid import ieee14
from repro.scada import GeneratorConfig, generate_scada


@pytest.fixture(scope="module")
def system():
    synthetic = generate_scada(
        ieee14(),
        GeneratorConfig(measurement_fraction=0.7, dual_home_fraction=0.3,
                        seed=6))
    problem = ObservabilityProblem.from_table(synthetic.table)
    return synthetic.network, problem


def test_verdict_parity_total_budgets(system):
    network, problem = system
    fresh = ScadaAnalyzer(network, problem)
    incremental = IncrementalAnalyzer(network, problem)
    for k in range(0, 5):
        budget = FailureBudget.total(k)
        a = fresh.verify(ResiliencySpec.observability(k=k),
                         minimize=False).status
        b = incremental.verify_budget(budget, minimize=False).status
        assert a == b, k


def test_verdict_parity_split_budgets(system):
    network, problem = system
    fresh = ScadaAnalyzer(network, problem)
    incremental = IncrementalAnalyzer(network, problem)
    for k1, k2 in [(0, 0), (1, 0), (0, 1), (2, 1), (3, 2)]:
        budget = FailureBudget.split(k1, k2)
        a = fresh.verify(ResiliencySpec.observability(k1=k1, k2=k2),
                         minimize=False).status
        b = incremental.verify_budget(budget, minimize=False).status
        assert a == b, (k1, k2)


def test_secured_property(system):
    network, problem = system
    incremental = IncrementalAnalyzer(
        network, problem, prop=Property.SECURED_OBSERVABILITY)
    fresh = ScadaAnalyzer(network, problem)
    for k in (0, 1, 2):
        a = fresh.verify(ResiliencySpec.secured_observability(k=k),
                         minimize=False).status
        b = incremental.verify_budget(FailureBudget.total(k),
                                      minimize=False).status
        assert a == b, k


def test_threat_vectors_validate(system):
    network, problem = system
    incremental = IncrementalAnalyzer(network, problem)
    result = incremental.verify_budget(FailureBudget.total(4))
    if result.status is Status.THREAT_FOUND:
        assert incremental.reference.is_threat(
            result.spec, result.threat.failed_devices)
        assert result.threat.minimal


def test_queries_are_independent(system):
    """A wide budget query must not leak into a later narrow one."""
    network, problem = system
    incremental = IncrementalAnalyzer(network, problem)
    wide = incremental.verify_budget(FailureBudget.total(6),
                                     minimize=False)
    narrow = incremental.verify_budget(FailureBudget.total(0),
                                       minimize=False)
    fresh = ScadaAnalyzer(network, problem)
    expected = fresh.verify(ResiliencySpec.observability(k=0),
                            minimize=False).status
    assert narrow.status == expected
    # And re-asking the wide one still matches.
    again = incremental.verify_budget(FailureBudget.total(6),
                                      minimize=False)
    assert again.status == wide.status


def test_max_resiliency_matches_binary_search(system):
    from repro.analysis import max_total_resiliency
    network, problem = system
    fresh = ScadaAnalyzer(network, problem)
    incremental = IncrementalAnalyzer(network, problem)
    assert incremental.max_total_resiliency() == \
        max_total_resiliency(fresh)


def test_case_study_parity():
    from repro.cases import case_problem, fig3_network
    network, problem = fig3_network(), case_problem()
    incremental = IncrementalAnalyzer(network, problem)
    assert incremental.verify_budget(
        FailureBudget.split(1, 1)).is_resilient
    result = incremental.verify_budget(FailureBudget.split(2, 1))
    assert result.status is Status.THREAT_FOUND
