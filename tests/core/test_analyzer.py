"""The SCADA Analyzer: verdicts, threat vectors, enumeration."""

import pytest

from repro.core import (
    ObservabilityProblem,
    ResiliencySpec,
    ScadaAnalyzer,
    Status,
)


@pytest.fixture
def analyzer(tiny_network, tiny_problem):
    return ScadaAnalyzer(tiny_network, tiny_problem)


def test_zero_budget_observability_holds(analyzer):
    result = analyzer.verify(ResiliencySpec.observability(k=0))
    assert result.status is Status.RESILIENT
    assert result.is_resilient
    assert result.threat is None
    assert "HOLDS" in result.summary()


def test_single_failure_breaks_tiny_system(analyzer):
    result = analyzer.verify(ResiliencySpec.observability(k=1))
    assert result.status is Status.THREAT_FOUND
    assert result.threat is not None
    assert result.threat.size == 1
    assert "VIOLATED" in result.summary()


def test_threat_vector_details(analyzer):
    result = analyzer.verify(ResiliencySpec.observability(k=1))
    threat = result.threat
    assert threat.minimal
    assert threat.undelivered_measurements
    assert threat.uncovered_states
    # Human-readable description names device types.
    assert "IED" in threat.describe() or "RTU" in threat.describe()


def test_secured_observability_fails_without_failures(analyzer):
    # z2's hop is not integrity protected, so secured observability
    # fails already at budget zero, with an *empty* threat vector.
    result = analyzer.verify(ResiliencySpec.secured_observability(k=0))
    assert result.status is Status.THREAT_FOUND
    assert result.threat.size == 0
    assert "no failures needed" in result.threat.describe()


def test_unminimized_vector_is_still_valid(analyzer):
    result = analyzer.verify(ResiliencySpec.observability(k=2),
                             minimize=False)
    assert result.status is Status.THREAT_FOUND
    assert not result.threat.minimal
    assert analyzer.reference.is_threat(
        ResiliencySpec.observability(k=2), result.threat.failed_devices)


def test_split_budget_verification(analyzer):
    result = analyzer.verify(ResiliencySpec.observability(k1=0, k2=1))
    assert result.status is Status.THREAT_FOUND
    assert result.threat.failed_rtus == frozenset({3})
    assert result.threat.failed_ieds == frozenset()


def test_enumeration_matches_brute_force(analyzer):
    spec = ResiliencySpec.observability(k=2)
    enumerated = {tuple(sorted(t.failed_devices))
                  for t in analyzer.enumerate_threat_vectors(spec)}
    brute = {tuple(sorted(t))
             for t in analyzer.reference.brute_force_threats(spec)}
    assert enumerated == brute == {(1,), (2,), (3,)}


def test_enumeration_limit(analyzer):
    spec = ResiliencySpec.observability(k=2)
    assert len(analyzer.enumerate_threat_vectors(spec, limit=2)) == 2


def test_enumeration_nonminimal_counts_assignments(analyzer):
    spec = ResiliencySpec.observability(k=1)
    raw = analyzer.enumerate_threat_vectors(spec, minimal=False)
    # Exactly the three singleton failure assignments.
    assert len(raw) == 3


def test_result_records_model_size(analyzer):
    result = analyzer.verify(ResiliencySpec.observability(k=1))
    assert result.num_vars > 0
    assert result.num_clauses > 0
    assert result.total_time >= 0


def test_model_size_without_solving(analyzer):
    sizes = analyzer.model_size(ResiliencySpec.secured_observability(k=1))
    assert sizes["vars"] > 0 and sizes["clauses"] > 0


def test_bad_data_spec(analyzer):
    result = analyzer.verify(
        ResiliencySpec.bad_data_detectability(r=0, k=0))
    # State 2 has no secured measurement at all.
    assert result.status is Status.THREAT_FOUND
