"""Three-valued galloping search: UNKNOWN is neither bound."""

import pytest

from repro.core import SearchBounds, galloping_max_bounded
from repro.core.search import galloping_max


def _oracle(true_max, unknown_at=()):
    calls = []

    def check(k):
        calls.append(k)
        if k in unknown_at:
            return None
        return k <= true_max

    return check, calls


def test_exact_search_finds_maximum():
    check, calls = _oracle(true_max=5)
    bounds = galloping_max_bounded(check, 20)
    assert bounds == SearchBounds(lower=5, upper=5, unknown_budgets=())
    assert bounds.exact
    assert bounds.describe() == "5"
    # Galloping probes far fewer points than a linear scan would.
    assert len(calls) < 20


def test_never_holds_gives_negative_lower():
    check, _ = _oracle(true_max=-1)
    bounds = galloping_max_bounded(check, 10)
    assert bounds.exact and bounds.lower == -1


def test_unknown_probe_widens_the_bracket():
    # The oracle cannot decide k=3; the true max is 4.  The search must
    # report a bracket containing the truth, never a point verdict.
    check, _ = _oracle(true_max=4, unknown_at={3})
    bounds = galloping_max_bounded(check, 10)
    assert not bounds.exact
    assert bounds.lower <= 4 <= bounds.upper
    assert 3 in bounds.unknown_budgets
    assert "UNKNOWN" in bounds.describe()


def test_all_unknown_keeps_full_range():
    bounds = galloping_max_bounded(lambda k: None, 6)
    assert not bounds.exact
    assert bounds.lower == -1 and bounds.upper == 6


def test_facade_returns_lower_bound():
    check, _ = _oracle(true_max=2)
    assert galloping_max(check, 10) == 2


def test_unknown_at_zero_proves_nothing():
    bounds = galloping_max_bounded(lambda k: None if k == 0 else True, 8)
    assert bounds == SearchBounds(lower=-1, upper=8, unknown_budgets=(0,))


def test_monotone_exhaustive_against_linear_scan():
    for true_max in range(-1, 9):
        check, _ = _oracle(true_max=true_max)
        bounds = galloping_max_bounded(check, 8)
        expected = min(true_max, 8)
        assert bounds.exact and bounds.lower == expected, true_max


# ----------------------------------------------------------------------
# Bracket seeding (the structural screen feeds known lower bounds)
# ----------------------------------------------------------------------

def test_seeded_lower_bound_is_never_reprobed():
    check, calls = _oracle(true_max=7)
    bounds = galloping_max_bounded(check, 20, lower=4)
    assert bounds.exact and bounds.lower == 7
    # The seed is trusted: no probe at or below it.
    assert all(k > 4 for k in calls)


def test_seed_equal_to_upper_needs_zero_probes():
    check, calls = _oracle(true_max=9)
    bounds = galloping_max_bounded(check, 5, lower=5)
    assert bounds == SearchBounds(lower=5, upper=5)
    assert calls == []


def test_seed_above_upper_raises():
    check, _ = _oracle(true_max=9)
    with pytest.raises(ValueError):
        galloping_max_bounded(check, 3, lower=4)


def test_negative_upper_probes_nothing():
    check, calls = _oracle(true_max=9)
    assert galloping_max_bounded(check, -1) == SearchBounds(-1, -1)
    assert calls == []


def test_seeded_exhaustive_against_linear_scan():
    for true_max in range(0, 9):
        for seed in range(0, true_max + 1):
            check, calls = _oracle(true_max=true_max)
            bounds = galloping_max_bounded(check, 10, lower=seed)
            assert bounds.exact and bounds.lower == true_max, (true_max,
                                                               seed)
            assert all(k > seed for k in calls)


def test_unseeded_call_matches_legacy_behavior():
    check, calls = _oracle(true_max=3)
    seeded = galloping_max_bounded(check, 10, lower=-1)
    check2, _ = _oracle(true_max=3)
    legacy = galloping_max_bounded(check2, 10)
    assert seeded == legacy
    assert 0 in calls  # the unseeded search still starts at zero
