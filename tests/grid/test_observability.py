"""Numeric observability oracle."""

import pytest

from repro.grid import (
    JacobianTable,
    covered_states,
    full_measurement_plan,
    ieee14,
    is_rank_observable,
    rank_of_rows,
    sampled_measurement_plan,
)


def test_full_plan_rank():
    table = JacobianTable(full_measurement_plan(ieee14()))
    all_indices = table.plan.indices()
    assert rank_of_rows(table, all_indices) == 13


def test_rank_of_empty_selection():
    table = JacobianTable(full_measurement_plan(ieee14()))
    assert rank_of_rows(table, []) == 0


def test_reference_bus_observability():
    table = JacobianTable(full_measurement_plan(ieee14()))
    indices = table.plan.indices()
    # Full rank-n fails (DC matrix always rank n-1)...
    assert not is_rank_observable(table, indices)
    # ...but with a reference bus the conventional criterion holds.
    assert is_rank_observable(table, indices, reference_bus=1)


def test_subset_loses_observability():
    table = JacobianTable(full_measurement_plan(ieee14()))
    few = table.plan.indices()[:3]
    assert not is_rank_observable(table, few, reference_bus=1)


def test_covered_states():
    table = JacobianTable(full_measurement_plan(ieee14()))
    # The first measurement is the forward flow on line 1-2.
    assert covered_states(table, [1]) == {1, 2}
    assert covered_states(table, []) == set()


def test_paper_criterion_is_necessary_for_rank():
    """Rank observability (with reference) implies the paper's counting
    criterion over the same rows."""
    table = JacobianTable(sampled_measurement_plan(ieee14(), 0.8, seed=4))
    indices = table.plan.indices()
    if is_rank_observable(table, indices, reference_bus=1):
        covered = covered_states(table, indices)
        assert covered == set(range(1, 15))
