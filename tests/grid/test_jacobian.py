"""DC Jacobian construction."""

import numpy as np
import pytest

from repro.grid import (
    JacobianTable,
    Measurement,
    MeasurementPlan,
    MeasurementType,
    full_measurement_plan,
    ieee14,
    jacobian_matrix,
    jacobian_row,
    state_sets,
)


def test_forward_flow_row():
    system = ieee14()
    msr = Measurement(1, MeasurementType.LINE_FLOW_FORWARD, 1)
    row = jacobian_row(system, msr)
    b = system.branch(1).susceptance
    assert row == {1: pytest.approx(b), 2: pytest.approx(-b)}


def test_backward_flow_negates_forward():
    system = ieee14()
    fwd = jacobian_row(system, Measurement(
        1, MeasurementType.LINE_FLOW_FORWARD, 3))
    bwd = jacobian_row(system, Measurement(
        2, MeasurementType.LINE_FLOW_BACKWARD, 3))
    for bus, coeff in fwd.items():
        assert bwd[bus] == pytest.approx(-coeff)


def test_injection_row_sums_to_zero():
    system = ieee14()
    for bus in range(1, 15):
        row = jacobian_row(system, Measurement(
            1, MeasurementType.BUS_INJECTION, bus))
        assert sum(row.values()) == pytest.approx(0.0, abs=1e-9)
        assert row[bus] > 0


def test_injection_touches_neighborhood():
    system = ieee14()
    row = jacobian_row(system, Measurement(
        1, MeasurementType.BUS_INJECTION, 4))
    assert set(row) == {4} | set(system.neighbors(4))


def test_jacobian_matrix_shape_and_rank():
    plan = full_measurement_plan(ieee14())
    h = jacobian_matrix(plan)
    assert h.shape == (plan.num_measurements, 14)
    # The full DC Jacobian has rank n-1 (angles are relative).
    assert np.linalg.matrix_rank(h) == 13


def test_state_sets_match_nonzeros():
    plan = full_measurement_plan(ieee14())
    h = jacobian_matrix(plan)
    sets = state_sets(plan)
    for pos, msr in enumerate(plan.measurements):
        nonzero = {bus + 1 for bus in np.nonzero(h[pos])[0]}
        assert set(sets[msr.index]) == nonzero


def test_table_with_explicit_rows():
    plan = MeasurementPlan(ieee14(), [
        Measurement(1, MeasurementType.BUS_INJECTION, 1),
        Measurement(2, MeasurementType.BUS_INJECTION, 2),
    ])
    rows = [{1: 2.0, 2: -2.0}, {2: 5.0}]
    table = JacobianTable(plan, rows)
    assert table.state_set(1) == [1, 2]
    assert table.state_set(2) == [2]
    assert table.matrix().shape == (2, 14)


def test_table_row_count_mismatch():
    plan = MeasurementPlan(ieee14(), [
        Measurement(1, MeasurementType.BUS_INJECTION, 1)])
    with pytest.raises(ValueError):
        JacobianTable(plan, rows=[{1: 1.0}, {2: 1.0}])


def test_table_unknown_measurement():
    table = JacobianTable(full_measurement_plan(ieee14()))
    with pytest.raises(KeyError):
        table.state_set(10_000)
