"""Measurement taxonomy and unique-component grouping."""

import pytest

from repro.grid import (
    Measurement,
    MeasurementPlan,
    MeasurementType,
    full_measurement_plan,
    ieee14,
    sampled_measurement_plan,
)


def test_full_plan_size():
    system = ieee14()
    plan = full_measurement_plan(system)
    # 2 flow readings per line + 1 injection per bus.
    assert plan.num_measurements == 2 * system.num_branches + system.num_buses
    assert plan.num_states == 14


def test_component_keys_pair_flows():
    fwd = Measurement(1, MeasurementType.LINE_FLOW_FORWARD, 7)
    bwd = Measurement(2, MeasurementType.LINE_FLOW_BACKWARD, 7)
    inj = Measurement(3, MeasurementType.BUS_INJECTION, 7)
    assert fwd.component_key == bwd.component_key
    assert fwd.component_key != inj.component_key


def test_unique_component_sets_on_full_plan():
    plan = full_measurement_plan(ieee14())
    groups = plan.unique_component_sets()
    # One component per line plus one per bus.
    assert len(groups) == 20 + 14
    sizes = sorted(len(v) for v in groups.values())
    assert sizes.count(2) == 20 and sizes.count(1) == 14


def test_validation_rejects_duplicates():
    system = ieee14()
    msr = Measurement(1, MeasurementType.BUS_INJECTION, 1)
    with pytest.raises(ValueError):
        MeasurementPlan(system, [msr, msr])


def test_validation_rejects_unknown_elements():
    system = ieee14()
    with pytest.raises(ValueError):
        MeasurementPlan(system, [
            Measurement(1, MeasurementType.LINE_FLOW_FORWARD, 999)])
    with pytest.raises(ValueError):
        MeasurementPlan(system, [
            Measurement(1, MeasurementType.BUS_INJECTION, 999)])


def test_sampled_plan_fraction():
    system = ieee14()
    full = full_measurement_plan(system)
    plan = sampled_measurement_plan(system, 0.5, seed=1,
                                    ensure_coverage=False)
    assert plan.num_measurements == round(0.5 * full.num_measurements)


def test_sampled_plan_coverage_topup():
    system = ieee14()
    plan = sampled_measurement_plan(system, 0.1, seed=1)
    touched = set()
    for msr in plan.measurements:
        if msr.mtype.is_flow:
            touched.update(system.branch(msr.element).buses)
        else:
            touched.add(msr.element)
            touched.update(system.neighbors(msr.element))
    assert touched == set(range(1, 15))


def test_sampled_plan_deterministic():
    system = ieee14()
    a = sampled_measurement_plan(system, 0.6, seed=9)
    b = sampled_measurement_plan(system, 0.6, seed=9)
    assert [(m.mtype, m.element) for m in a.measurements] == \
           [(m.mtype, m.element) for m in b.measurements]


def test_sampled_plan_renumbers_contiguously():
    plan = sampled_measurement_plan(ieee14(), 0.4, seed=2)
    assert plan.indices() == list(range(1, plan.num_measurements + 1))


def test_bad_fraction_rejected():
    with pytest.raises(ValueError):
        sampled_measurement_plan(ieee14(), 0.0)
    with pytest.raises(ValueError):
        sampled_measurement_plan(ieee14(), 1.5)


def test_by_index_lookup():
    plan = full_measurement_plan(ieee14())
    assert plan.by_index(1).index == 1
    with pytest.raises(KeyError):
        plan.by_index(10_000)


def test_describe_strings():
    plan = full_measurement_plan(ieee14())
    text = plan.measurements[0].describe()
    assert "z1" in text and "line" in text
