"""DC state estimation and bad-data detection."""

import numpy as np
import pytest

from repro.grid import (
    DcStateEstimator,
    JacobianTable,
    UnobservableError,
    chi_square_threshold,
    full_measurement_plan,
    ieee14,
    sampled_measurement_plan,
)


@pytest.fixture(scope="module")
def table():
    return JacobianTable(full_measurement_plan(ieee14()))


@pytest.fixture(scope="module")
def true_angles():
    rng = np.random.default_rng(42)
    angles = rng.normal(0.0, 0.1, 14)
    angles[0] = 0.0  # reference bus 1
    return angles


def test_noiseless_roundtrip(table, true_angles):
    estimator = DcStateEstimator(table)
    readings = estimator.measure(true_angles)
    result = estimator.estimate(readings)
    np.testing.assert_allclose(result.angles, true_angles, atol=1e-8)
    assert result.objective == pytest.approx(0.0, abs=1e-9)
    assert result.chi_square_passes


def test_noisy_estimation_close(table, true_angles):
    estimator = DcStateEstimator(table, sigma=0.01)
    rng = np.random.default_rng(7)
    readings = estimator.measure(true_angles, noise=0.01, rng=rng)
    result = estimator.estimate(readings)
    np.testing.assert_allclose(result.angles, true_angles, atol=0.05)
    assert result.chi_square_passes


def test_unobservable_raises(table, true_angles):
    estimator = DcStateEstimator(table)
    readings = estimator.measure(true_angles, indices=[1, 2])
    with pytest.raises(UnobservableError):
        estimator.estimate(readings)


def test_empty_readings_raise(table):
    with pytest.raises(UnobservableError):
        DcStateEstimator(table).estimate({})


def test_reference_bus_validation(table):
    with pytest.raises(ValueError):
        DcStateEstimator(table, reference_bus=0)
    with pytest.raises(ValueError):
        DcStateEstimator(table, reference_bus=99)


def test_gross_error_detected_with_redundancy(table, true_angles):
    estimator = DcStateEstimator(table, sigma=0.01)
    rng = np.random.default_rng(3)
    readings = estimator.measure(true_angles, noise=0.005, rng=rng)
    corrupted = max(readings)
    readings[corrupted] += 1.0  # gross error
    result = estimator.estimate(readings)
    assert not result.chi_square_passes
    suspect, _ = result.largest_normalized_residual()
    clean, removed = estimator.detect_and_remove_bad_data(readings)
    assert corrupted in removed
    assert clean.chi_square_passes
    np.testing.assert_allclose(clean.angles, true_angles, atol=0.05)


def test_critical_measurement_error_is_undetectable(true_angles):
    """The paper's §III-E premise: with a critical (non-redundant)
    measurement, bad data cannot be detected."""
    plan = sampled_measurement_plan(ieee14(), 0.25, seed=1)
    table = JacobianTable(plan)
    estimator = DcStateEstimator(table, sigma=0.01)
    readings = estimator.measure(true_angles[:14])
    # With zero redundancy (m == n-1) the residuals vanish identically,
    # so corrupting any measurement passes the chi-square test.
    indices = sorted(readings)
    h = estimator._h_matrix(indices)
    if len(indices) == h.shape[1]:  # exactly determined
        readings[indices[0]] += 1.0
        result = estimator.estimate(readings)
        assert result.chi_square_passes  # the error slips through


def test_chi_square_threshold_table_and_approximation():
    assert chi_square_threshold(1) == pytest.approx(3.841)
    assert chi_square_threshold(10) == pytest.approx(18.307)
    assert chi_square_threshold(0) == 0.0
    # Approximation beyond the table is monotone and plausible.
    assert chi_square_threshold(40) > chi_square_threshold(30)
    assert 40 < chi_square_threshold(40) < 70


def test_measure_subset(table, true_angles):
    estimator = DcStateEstimator(table)
    readings = estimator.measure(true_angles, indices=[1, 3, 5])
    assert sorted(readings) == [1, 3, 5]
