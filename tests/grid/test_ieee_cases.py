"""IEEE case data and synthetic grid generation."""

import pytest

from repro.grid import (
    CASE_SIZES,
    case30,
    case57,
    case118,
    case_by_buses,
    ieee14,
    synthetic_grid,
)


def test_ieee14_shape():
    system = ieee14()
    assert system.num_buses == 14
    assert system.num_branches == 20
    assert system.is_connected()


def test_ieee14_known_susceptances():
    system = ieee14()
    line12 = system.branch(1)
    assert line12.buses == (1, 2)
    assert line12.susceptance == pytest.approx(16.90, abs=0.01)
    line45 = system.branch(7)
    assert line45.susceptance == pytest.approx(23.75, abs=0.01)


@pytest.mark.parametrize("factory,buses", [
    (case30, 30), (case57, 57), (case118, 118),
])
def test_synthetic_cases_match_real_sizes(factory, buses):
    system = factory()
    assert system.num_buses == buses
    assert system.num_branches == CASE_SIZES[buses]
    assert system.is_connected()
    # Power-grid degree profile the paper relies on.
    assert 2.0 < system.average_degree() < 4.0


def test_synthetic_grid_is_deterministic():
    a = synthetic_grid(20, 28, seed=5)
    b = synthetic_grid(20, 28, seed=5)
    assert [(x.from_bus, x.to_bus, x.reactance) for x in a.branches] == \
           [(x.from_bus, x.to_bus, x.reactance) for x in b.branches]


def test_synthetic_grid_seed_changes_topology():
    a = synthetic_grid(20, 28, seed=1)
    b = synthetic_grid(20, 28, seed=2)
    assert [(x.from_bus, x.to_bus) for x in a.branches] != \
           [(x.from_bus, x.to_bus) for x in b.branches]


def test_synthetic_grid_bounds():
    with pytest.raises(ValueError):
        synthetic_grid(10, 8, seed=0)  # below spanning tree
    with pytest.raises(ValueError):
        synthetic_grid(4, 7, seed=0)  # above complete graph


def test_case_by_buses_dispatch():
    assert case_by_buses(14).name == "ieee14"
    assert case_by_buses(57).num_buses == 57
    with pytest.raises(ValueError):
        case_by_buses(99)
