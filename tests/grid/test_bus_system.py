"""Bus system model."""

import pytest

from repro.grid import Branch, BusSystem, from_branch_list, ieee14


def test_branch_susceptance():
    branch = Branch(1, 1, 2, 0.25)
    assert branch.susceptance == pytest.approx(4.0)


def test_branch_validation():
    with pytest.raises(ValueError):
        Branch(1, 2, 2, 0.1)
    with pytest.raises(ValueError):
        Branch(1, 1, 2, 0.0)


def test_from_branch_list():
    system = from_branch_list("toy", 3, [(1, 2, 0.1), (2, 3, 0.2)])
    assert system.num_branches == 2
    assert system.branch(1).buses == (1, 2)


def test_duplicate_branch_index_rejected():
    with pytest.raises(ValueError):
        BusSystem("bad", 2, [Branch(1, 1, 2, 0.1), Branch(1, 2, 1, 0.2)])


def test_parallel_branch_rejected():
    branches = [Branch(1, 1, 2, 0.1), Branch(2, 2, 1, 0.2)]
    with pytest.raises(ValueError):
        BusSystem("bad", 2, branches)


def test_out_of_range_bus_rejected():
    with pytest.raises(ValueError):
        BusSystem("bad", 2, [Branch(1, 1, 3, 0.1)])


def test_neighbors_and_degree():
    system = from_branch_list("toy", 4,
                              [(1, 2, 0.1), (1, 3, 0.1), (3, 4, 0.1)])
    assert sorted(system.neighbors(1)) == [2, 3]
    assert system.degree(1) == 2
    assert system.degree(4) == 1


def test_connectivity():
    connected = from_branch_list("c", 3, [(1, 2, 0.1), (2, 3, 0.1)])
    assert connected.is_connected()
    disconnected = from_branch_list("d", 3, [(1, 2, 0.1)])
    assert not disconnected.is_connected()


def test_average_degree_ieee14():
    system = ieee14()
    # The paper cites ~3 as the typical grid degree.
    assert 2.5 < system.average_degree() < 3.5


def test_unknown_branch_lookup():
    with pytest.raises(KeyError):
        ieee14().branch(999)
