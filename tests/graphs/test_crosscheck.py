"""Graph-vs-SAT cross-validation: the two engines must agree."""

import itertools
import json
import random

import pytest

from repro.cases import case_problem, fig3_network, fig4_network
from repro.core import ObservabilityProblem, Property
from repro.graphs import cross_check
from repro.scada import Device, DeviceType, Link, ScadaNetwork

from .test_security_index import _random_system


@pytest.mark.parametrize("topology", ["fig3", "fig4"])
def test_case_study_agrees(topology):
    network = fig4_network() if topology == "fig4" else fig3_network()
    report = cross_check(network, case_problem())
    assert report.ok
    assert report.exit_code() == 0
    assert report.checks > 0
    assert report.disagreements == []


def test_tiny_exhaustive(tiny_network, tiny_problem):
    report = cross_check(tiny_network, tiny_problem)
    assert report.ok
    # Every property's bracket was cross-checked against the solver.
    assert {entry["property"] for entry in report.resiliency} == {
        p.value for p in Property}
    # The published indices match the structural analysis directly.
    assert report.group_indices["assured"] == {1: 1, 2: 1}


def test_report_serialization(tiny_network, tiny_problem):
    report = cross_check(tiny_network, tiny_problem)
    payload = json.loads(report.to_json())
    assert payload["disagreements"] == []
    assert payload["checks"] == report.checks
    assert "agreement" in report.summary()
    assert "agreement" in report.to_text()


def test_single_property_restriction(tiny_network, tiny_problem):
    report = cross_check(tiny_network, tiny_problem,
                         properties=[Property.OBSERVABILITY])
    assert report.ok
    assert [entry["property"] for entry in report.resiliency] == [
        Property.OBSERVABILITY.value]


def test_random_small_systems_agree():
    # The property-test core of the PR: on exhaustively small random
    # systems the structural pass and the SAT engine must agree on
    # every group index, state criticality, and resiliency bracket.
    rng = random.Random(5)
    for _ in range(8):
        network, problem = _random_system(rng)
        report = cross_check(network, problem)
        assert report.ok, report.to_text()
        assert report.unknown == 0


def test_ieee14_agrees(ieee14_synthetic):
    problem = ObservabilityProblem.from_table(ieee14_synthetic.table)
    report = cross_check(ieee14_synthetic.network, problem)
    assert report.ok, report.to_text()
    assert report.checks > 50


@pytest.mark.slow
def test_ieee57_agrees():
    from repro.grid import case_by_buses
    from repro.scada import GeneratorConfig, generate_scada

    synthetic = generate_scada(
        case_by_buses(57),
        GeneratorConfig(measurement_fraction=0.6, hierarchy_level=1,
                        seed=3))
    problem = ObservabilityProblem.from_table(synthetic.table)
    report = cross_check(synthetic.network, problem)
    assert report.ok, report.to_text()
