"""Structural security indices vs handmade values and brute force."""

import itertools
import random

import pytest

from repro.core import ObservabilityProblem, Property
from repro.graphs import DeliveryGraph, StructuralAnalysis
from repro.scada import Device, DeviceType, Link, ScadaNetwork


def _network(devices, links, mmap, **kwargs):
    kwargs.setdefault("strict", False)
    return ScadaNetwork(devices=devices, links=links,
                        measurement_map=mmap, **kwargs)


# ----------------------------------------------------------------------
# Handmade values on the tiny fixture
# ----------------------------------------------------------------------

def test_tiny_assured_indices(tiny_network, tiny_problem):
    analysis = StructuralAnalysis(tiny_network, tiny_problem)
    # Each group rides one chain IED → RTU 3 → MTU: one failure silences.
    assert analysis.security_indices() == {1: 1, 2: 1}
    assert analysis.state_criticality(1) == 1
    assert analysis.state_criticality(2) == 1
    assert analysis.certified()


def test_tiny_secured_mode_sees_the_weak_link(tiny_network, tiny_problem):
    analysis = StructuralAnalysis(tiny_network, tiny_problem)
    # IED 2's uplink only authenticates: no secured path, so its group
    # is undeliverable before any failure — index zero by convention.
    assert analysis.security_index(1, secured=True) == 1
    assert analysis.security_index(2, secured=True) == 0


def test_tiny_observability_bracket_is_exact(tiny_network, tiny_problem):
    analysis = StructuralAnalysis(tiny_network, tiny_problem)
    bounds = analysis.attack_bounds(Property.OBSERVABILITY)
    assert bounds.certified and bounds.exact
    assert bounds.lower == bounds.upper == 1
    assert len(bounds.witness) == 1
    assert bounds.resiliency_upper(fallback=3) == 0
    assert bounds.resiliency_lower() == 0


def test_tiny_secured_observability_is_zero(tiny_network, tiny_problem):
    analysis = StructuralAnalysis(tiny_network, tiny_problem)
    bounds = analysis.attack_bounds(Property.SECURED_OBSERVABILITY)
    # Group 2 is undeliverable in secured mode: violated at zero cost.
    assert bounds.lower == 0 and bounds.upper == 0
    assert bounds.exact


def test_tiny_command_bracket(tiny_network, tiny_problem):
    analysis = StructuralAnalysis(tiny_network, tiny_problem)
    bounds = analysis.attack_bounds(Property.COMMAND_DELIVERABILITY)
    # Cheapest: fail RTU 3, leaving either IED alive but unreachable.
    assert bounds.exact and bounds.lower == 1
    assert bounds.witness == (3,)


def test_unknown_measurement_has_zero_index(tiny_network, tiny_problem):
    analysis = StructuralAnalysis(tiny_network, tiny_problem)
    assert analysis.security_index(999) == 0


def test_attack_bounds_are_cached(tiny_network, tiny_problem):
    analysis = StructuralAnalysis(tiny_network, tiny_problem)
    first = analysis.attack_bounds(Property.OBSERVABILITY)
    assert analysis.attack_bounds(Property.OBSERVABILITY) is first


def test_describe_mentions_the_regime(tiny_network, tiny_problem):
    analysis = StructuralAnalysis(tiny_network, tiny_problem)
    text = analysis.attack_bounds(Property.OBSERVABILITY).describe()
    assert "observability" in text and "exact" in text


# ----------------------------------------------------------------------
# The exactness certificate
# ----------------------------------------------------------------------

def test_hybrid_route_dropped_by_the_cap_voids_the_certificate():
    # RTU mesh 2–4–3 with two exits: with max_path_length=4 the route
    # 1–2–4–3–6 exists in the union graph (its edges come from shorter
    # enumerated paths) but is not itself enumerated, so cut sizes are
    # witnesses only.
    devices = [Device(1, DeviceType.IED), Device(5, DeviceType.IED),
               Device(2, DeviceType.RTU), Device(3, DeviceType.RTU),
               Device(4, DeviceType.RTU), Device(6, DeviceType.MTU)]
    links = [Link(1, 1, 2), Link(2, 2, 4), Link(3, 4, 6),
             Link(4, 5, 4), Link(5, 3, 4), Link(6, 3, 6)]
    network = _network(devices, links, {1: [1], 5: [2]},
                       max_path_length=4)
    graph = DeliveryGraph(network)
    assert not graph.certified
    problem = ObservabilityProblem(num_states=2,
                                   state_sets={1: [1], 2: [2]},
                                   unique_groups=[[1], [2]])
    analysis = StructuralAnalysis(network, problem)
    bounds = analysis.attack_bounds(Property.OBSERVABILITY)
    assert not bounds.certified
    assert bounds.upper is not None  # the witness side stays sound


def test_uncapped_enumeration_is_certified():
    devices = [Device(1, DeviceType.IED), Device(5, DeviceType.IED),
               Device(2, DeviceType.RTU), Device(3, DeviceType.RTU),
               Device(4, DeviceType.RTU), Device(6, DeviceType.MTU)]
    links = [Link(1, 1, 2), Link(2, 2, 4), Link(3, 4, 6),
             Link(4, 5, 4), Link(5, 3, 4), Link(6, 3, 6)]
    network = _network(devices, links, {1: [1], 5: [2]})
    assert DeliveryGraph(network).certified


def test_capped_but_complete_family_stays_certified():
    # A cap that drops nothing: every union route is still enumerated.
    devices = [Device(1, DeviceType.IED), Device(2, DeviceType.RTU),
               Device(3, DeviceType.MTU)]
    links = [Link(1, 1, 2), Link(2, 2, 3)]
    network = _network(devices, links, {1: [1]}, max_path_length=3)
    assert DeliveryGraph(network).certified


# ----------------------------------------------------------------------
# Brute force on random small systems
# ----------------------------------------------------------------------

def _random_system(rng):
    num_ieds = rng.randint(2, 4)
    num_rtus = rng.randint(1, 3)
    ieds = list(range(1, num_ieds + 1))
    rtus = list(range(num_ieds + 1, num_ieds + num_rtus + 1))
    mtu = num_ieds + num_rtus + 1
    devices = ([Device(i, DeviceType.IED) for i in ieds]
               + [Device(r, DeviceType.RTU) for r in rtus]
               + [Device(mtu, DeviceType.MTU)])
    links, seen = [], set()

    def link(a, b):
        if (a, b) not in seen and (b, a) not in seen:
            seen.add((a, b))
            links.append(Link(len(links) + 1, a, b))

    for ied in ieds:
        link(ied, rng.choice(rtus))
        if rng.random() < 0.5:
            link(ied, rng.choice(rtus))
    for a, b in itertools.combinations(rtus, 2):
        if rng.random() < 0.4:
            link(a, b)
    for rtu in rtus:
        if rng.random() < 0.7 or rtu == rtus[-1]:
            link(rtu, mtu)

    mmap = {ied: [z] for z, ied in enumerate(ieds, start=1)}
    groups = [[z] for z in range(1, num_ieds + 1)]
    if num_ieds >= 2 and rng.random() < 0.6:
        groups = [[1, 2]] + groups[2:]  # one redundant two-IED group
    problem = ObservabilityProblem(
        num_states=len(groups),
        state_sets={z: [s] for s, group in enumerate(groups, start=1)
                    for z in group},
        unique_groups=groups)
    return _network(devices, links, mmap), problem


def _brute_group_cost(network, group, mmap_of):
    """Min transversal of the group's assured-path family, or None."""
    paths = []
    for z in group:
        paths.extend(tuple(p) for p in network.assured_paths(mmap_of[z]))
    if not paths:
        return 0
    field = sorted(network.field_device_ids)
    for size in range(len(field) + 1):
        for failed in itertools.combinations(field, size):
            if all(set(path) & set(failed) for path in paths):
                return size
    return None


def test_group_cuts_match_brute_force_transversals():
    rng = random.Random(11)
    checked = 0
    for _ in range(25):
        network, problem = _random_system(rng)
        analysis = StructuralAnalysis(network, problem)
        mmap_of = {z: ied for ied, zs in network.measurement_map.items()
                   for z in zs}
        for group in problem.unique_groups:
            result = analysis.group_cut(group)
            expected = _brute_group_cost(network, group, mmap_of)
            if expected is None:
                assert not result.cuttable
                continue
            if result.certified:
                assert result.size == expected
                checked += 1
            else:
                assert result.size >= expected  # witness side only
            # The witness really silences the group.
            if result.cuttable and result.size > 0:
                assert all(
                    set(path) & set(result.devices)
                    for z in group
                    for path in map(tuple,
                                    network.assured_paths(mmap_of[z])))
    assert checked >= 20  # most random systems certify
