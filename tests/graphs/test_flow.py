"""The shared max-flow / min-cut kernel: edge cases and brute force."""

import itertools
import random

import pytest

from repro.graphs.flow import INF, FlowNetwork, unit_vertex_cut


# ----------------------------------------------------------------------
# FlowNetwork edge cases
# ----------------------------------------------------------------------

def test_parallel_arcs_merge_additively():
    net = FlowNetwork()
    net.add_arc(1, 2, 2)
    net.add_arc(1, 2, 3)
    assert net.capacity(1, 2) == 5
    assert net.max_flow(1, 2).flow == 5


def test_zero_capacity_arc_registers_nodes_but_carries_nothing():
    net = FlowNetwork()
    net.add_arc(1, 2, 0)
    assert net.has_node(1) and net.has_node(2)
    result = net.max_flow(1, 2)
    assert result.flow == 0
    # The min cut is empty: no positive-capacity arc crosses it.
    assert net.min_cut_arcs(result) == []


def test_disconnected_source_and_sink():
    net = FlowNetwork()
    net.add_arc(1, 2, 4)
    net.add_arc(3, 4, 4)
    result = net.max_flow(1, 4)
    assert result.flow == 0
    assert 1 in result.source_side and 4 not in result.source_side


def test_missing_endpoints_yield_zero_flow():
    net = FlowNetwork()
    net.add_arc(1, 2, 1)
    assert net.max_flow(1, 99).flow == 0
    assert net.max_flow(99, 2).flow == 0


def test_source_equals_sink_raises():
    net = FlowNetwork()
    net.add_arc(1, 2, 1)
    with pytest.raises(ValueError):
        net.max_flow(1, 1)


def test_negative_capacity_raises():
    net = FlowNetwork()
    with pytest.raises(ValueError):
        net.add_arc(1, 2, -1)


def test_bound_early_exit_carries_no_cut():
    net = FlowNetwork()
    for middle in (2, 3, 4):
        net.add_arc(1, middle, 1)
        net.add_arc(middle, 5, 1)
    result = net.max_flow(1, 5, bound=1)
    assert result.bounded
    assert result.flow == 2  # stopped as soon as the bound was exceeded
    assert result.source_side == frozenset()
    assert net.min_cut_arcs(result) == []


def test_min_cut_arcs_capacities_sum_to_flow():
    # Diamond with a cheap left branch and an expensive right branch.
    net = FlowNetwork()
    net.add_arc(0, 1, 1)
    net.add_arc(1, 3, 5)
    net.add_arc(0, 2, 5)
    net.add_arc(2, 3, 2)
    result = net.max_flow(0, 3)
    assert result.flow == 3
    cut = net.min_cut_arcs(result)
    assert sum(net.capacity(u, w) for u, w in cut) == result.flow


def _brute_min_cut(net: FlowNetwork, source: int, sink: int) -> int:
    """Min s-t cut by enumerating node partitions (max-flow dual)."""
    others = [n for n in net.nodes if n not in (source, sink)]
    best = None
    for bits in itertools.product([False, True], repeat=len(others)):
        side = {source} | {n for n, b in zip(others, bits) if b}
        crossing = sum(net.capacity(u, w)
                       for u in side for w in net.nodes if w not in side)
        if best is None or crossing < best:
            best = crossing
    assert best is not None
    return best


def test_max_flow_equals_brute_force_min_cut_on_random_graphs():
    rng = random.Random(7)
    for _ in range(40):
        net = FlowNetwork()
        num_nodes = rng.randint(2, 6)
        net.add_node(0)
        net.add_node(num_nodes - 1)
        for u in range(num_nodes):
            for w in range(num_nodes):
                if u != w and rng.random() < 0.5:
                    net.add_arc(u, w, rng.randint(0, 3))
        result = net.max_flow(0, num_nodes - 1)
        assert result.flow == _brute_min_cut(net, 0, num_nodes - 1)
        cut = net.min_cut_arcs(result)
        assert sum(net.capacity(u, w) for u, w in cut) == result.flow


# ----------------------------------------------------------------------
# unit_vertex_cut
# ----------------------------------------------------------------------

def test_single_chain_cut_is_one():
    result = unit_vertex_cut([1], [(1, 2, 3)], {1, 2}, 3)
    assert result.flow == 1
    assert len(result.cut_vertices) == 1
    assert set(result.cut_vertices) <= {1, 2}


def test_disjoint_routes_need_two_failures():
    paths = [(1, 2, 5), (1, 3, 5)]
    result = unit_vertex_cut([1], paths, {2, 3}, 5)
    assert result.flow == 2
    assert set(result.cut_vertices) == {2, 3}


def test_shared_forwarder_is_the_cheap_cut():
    # Two sources, both through vertex 4.
    paths = [(1, 4, 9), (2, 4, 9)]
    result = unit_vertex_cut([1, 2], paths, {1, 2, 4}, 9)
    assert result.flow == 1
    assert result.cut_vertices == (4,)


def test_protect_removes_a_vertex_from_the_failure_model():
    paths = [(1, 4, 9)]
    unprotected = unit_vertex_cut([1], paths, {1, 4}, 9)
    assert unprotected.flow == 1
    protected = unit_vertex_cut([1], paths, {1, 4}, 9, protect=[1, 4])
    assert protected.flow >= INF  # no unit vertex left on the route


def test_source_counts_toward_its_own_cut():
    result = unit_vertex_cut([1], [(1, 9)], {1}, 9)
    assert result.flow == 1
    assert result.cut_vertices == (1,)


def test_empty_sources_or_paths():
    assert unit_vertex_cut([], [(1, 2)], {1}, 2).flow == 0
    assert unit_vertex_cut([1], [], {1}, 2).flow == 0


def test_sink_absent_from_every_path():
    result = unit_vertex_cut([1], [(1, 2)], {1}, 99)
    assert result.flow == 0 and result.cut_vertices == ()


def test_negative_vertex_id_raises():
    with pytest.raises(ValueError):
        unit_vertex_cut([-2], [(-2, 3)], {3}, 3)


def test_bound_early_exit_vertex_cut():
    paths = [(1, 2, 9), (1, 3, 9), (1, 4, 9)]
    result = unit_vertex_cut([1], paths, {2, 3, 4}, 9, bound=1)
    assert result.bounded
    assert result.cut_vertices == ()


def _brute_vertex_cut(sources, paths, units, sink):
    """Smallest unit-vertex set disconnecting the union graph, or None."""
    adjacency = {}
    for path in paths:
        for a, b in zip(path, path[1:]):
            adjacency.setdefault(a, set()).add(b)

    def reaches(failed):
        frontier = [s for s in sources if s not in failed]
        seen = set(frontier)
        while frontier:
            node = frontier.pop()
            if node == sink:
                return True
            for nxt in adjacency.get(node, ()):
                if nxt not in failed and nxt not in seen:
                    seen.add(nxt)
                    frontier.append(nxt)
        return False

    used = sorted(units)
    for size in range(len(used) + 1):
        for failed in itertools.combinations(used, size):
            if not reaches(set(failed)):
                return size
    return None


def test_vertex_cut_matches_brute_force_on_random_path_families():
    rng = random.Random(21)
    for _ in range(60):
        forwarders = list(range(10, 10 + rng.randint(1, 4)))
        sources = list(range(1, 1 + rng.randint(1, 3)))
        sink = 99
        paths = []
        for source in sources:
            for _ in range(rng.randint(1, 3)):
                middle = rng.sample(forwarders,
                                    rng.randint(0, len(forwarders)))
                paths.append(tuple([source] + middle + [sink]))
        units = set(sources) | set(forwarders)
        result = unit_vertex_cut(sources, paths, units, sink)
        expected = _brute_vertex_cut(sources, paths, units, sink)
        if expected is None:
            assert result.flow >= INF
        else:
            assert result.flow == expected
            assert len(result.cut_vertices) == expected
            # The reported cut really disconnects the union graph.
            assert _brute_vertex_cut(
                sources, paths, set(result.cut_vertices), sink) == len(
                    result.cut_vertices)
