"""Term construction, simplification, and evaluation."""

import pytest

from repro.smt import (
    FALSE,
    TRUE,
    And,
    AtLeast,
    AtMost,
    Bool,
    Bools,
    BoolVal,
    Exactly,
    Iff,
    Implies,
    Ite,
    Not,
    Or,
    Xor,
    evaluate,
)
from repro.smt.terms import AndTerm, CardTerm, NotTerm, OrTerm

a, b, c = Bools("a b c")


def test_bools_splits_names():
    x, y = Bools("x y")
    assert x.name == "x" and y.name == "y"


def test_empty_name_rejected():
    with pytest.raises(ValueError):
        Bool("")


def test_structural_equality_and_hash():
    assert Bool("a") == Bool("a")
    assert hash(And(a, b)) == hash(And(a, b))
    assert And(a, b) != And(b, a)  # order matters structurally


def test_not_simplifications():
    assert Not(TRUE) is FALSE
    assert Not(FALSE) is TRUE
    assert Not(Not(a)) is a


def test_and_flattening_and_units():
    term = And(a, And(b, c))
    assert isinstance(term, AndTerm)
    assert len(term.args) == 3
    assert And(a, TRUE) is a
    assert And(a, FALSE) is FALSE
    assert And() is TRUE


def test_or_flattening_and_units():
    term = Or(a, Or(b, c))
    assert isinstance(term, OrTerm)
    assert len(term.args) == 3
    assert Or(a, FALSE) is a
    assert Or(a, TRUE) is TRUE
    assert Or() is FALSE


def test_implies_is_or_form():
    term = Implies(a, b)
    assert evaluate(term, {"a": True, "b": False}) is False
    assert evaluate(term, {"a": False, "b": False}) is True


def test_iff_constant_folding():
    assert Iff(TRUE, a) is a
    assert Iff(a, FALSE) == Not(a)


def test_xor_constant_folding():
    assert Xor(FALSE, a) is a
    assert Xor(TRUE, a) == Not(a)


def test_ite_constant_condition():
    assert Ite(TRUE, a, b) is a
    assert Ite(FALSE, a, b) is b


def test_operator_sugar():
    assert (a & b) == And(a, b)
    assert (a | b) == Or(a, b)
    assert (~a) == Not(a)
    assert (a >> b) == Implies(a, b)
    assert (a ^ b) == Xor(a, b)


def test_atmost_boundary_simplifications():
    assert AtMost([a, b], 2) is TRUE
    assert AtMost([a, b], 3) is TRUE
    assert AtMost([a, b], -1) is FALSE
    zero = AtMost([a, b], 0)
    assert evaluate(zero, {"a": False, "b": False})
    assert not evaluate(zero, {"a": True, "b": False})


def test_atleast_boundary_simplifications():
    assert AtLeast([a, b], 0) is TRUE
    assert AtLeast([a, b], 3) is FALSE
    assert AtLeast([a, b], 1) == Or(a, b)
    assert AtLeast([a, b], 2) == And(a, b)


def test_cardinality_constant_shift():
    # A constant-true argument raises the effective count.
    term = AtMost([a, TRUE, b], 1)
    assert isinstance(term, AndTerm)  # reduces to AtMost(.., 0) = ~a & ~b
    term = AtLeast([a, TRUE, b, c], 2)
    assert isinstance(term, CardTerm) or isinstance(term, OrTerm)


def test_exactly_semantics():
    term = Exactly([a, b, c], 2)
    assert evaluate(term, {"a": True, "b": True, "c": False})
    assert not evaluate(term, {"a": True, "b": True, "c": True})
    assert not evaluate(term, {"a": True, "b": False, "c": False})


def test_evaluate_missing_var_raises():
    with pytest.raises(KeyError):
        evaluate(And(a, b), {"a": True})


def test_evaluate_all_node_kinds():
    assign = {"a": True, "b": False, "c": True}
    assert evaluate(Ite(a, b, c), assign) is False
    assert evaluate(Xor(a, b), assign) is True
    assert evaluate(BoolVal(True), {}) is True
    assert evaluate(AtLeast([a, b, c], 2), assign) is True


def test_type_errors():
    with pytest.raises(TypeError):
        And(a, "b")
    with pytest.raises(TypeError):
        AtMost([a, 1], 1)


def test_repr_smoke():
    assert "a" in repr(a)
    assert "And" in repr(And(a, b))
    assert "AtMost" in repr(AtMost([a, b, c], 1))
