"""Tseitin encoding: model equivalence with direct evaluation."""

import itertools
import random

from repro.sat import SatSolver
from repro.smt import (
    And,
    AtLeast,
    AtMost,
    Bool,
    Iff,
    Implies,
    Ite,
    Not,
    Or,
    Xor,
    evaluate,
)
from repro.smt.tseitin import Encoder

NAMES = ["a", "b", "c", "d"]
VARS = [Bool(n) for n in NAMES]


def _count_models(term, names=NAMES):
    """Count satisfying assignments over `names` via the encoder."""
    solver = SatSolver()
    encoder = Encoder(solver)
    lit = encoder.literal(term)
    solver.add_clause([lit])
    input_vars = [encoder.var(n) for n in names]
    count = 0
    while solver.solve():
        cube = [v if solver.model_value(v) else -v for v in input_vars]
        count += 1
        assert count <= 2 ** len(names) + 1, "runaway enumeration"
        solver.add_clause([-l for l in cube])
    return count


def _truth_count(term, names=NAMES):
    return sum(
        1 for bits in itertools.product([False, True], repeat=len(names))
        if evaluate(term, dict(zip(names, bits))))


def test_single_variable():
    assert _count_models(VARS[0]) == 8


def test_negation():
    assert _count_models(Not(VARS[0])) == 8


def test_gates_model_counts():
    a, b, c, d = VARS
    for term in [
        And(a, b),
        Or(a, b, c),
        Xor(a, b),
        Iff(a, b),
        Implies(a, b),
        Ite(a, b, c),
        And(Or(a, b), Or(c, d), Not(And(a, c))),
        Xor(Xor(a, b), Xor(c, d)),
    ]:
        assert _count_models(term) == _truth_count(term), term


def test_cardinality_model_counts():
    a, b, c, d = VARS
    for term in [
        AtMost([a, b, c], 1),
        AtMost([a, b, c, d], 2),
        AtLeast([a, b, c, d], 3),
        Not(AtMost([a, b, c], 1)),
        Not(AtLeast([a, b, c, d], 2)),
        Or(AtMost([a, b], 0), AtLeast([c, d], 2)),
        And(Not(AtMost([a, b, c], 1)), AtMost([a, b, c], 2)),
    ]:
        assert _count_models(term) == _truth_count(term), term


def test_shared_subterms_encode_once():
    a, b = VARS[0], VARS[1]
    shared = And(a, b)
    solver = SatSolver()
    encoder = Encoder(solver)
    lit1 = encoder.literal(Or(shared, VARS[2]))
    vars_before = solver.num_vars
    lit2 = encoder.literal(Or(shared, VARS[3]))
    # Encoding the second Or must not re-encode the shared And gate.
    assert encoder.literal(shared) == encoder.literal(And(a, b))


def test_assert_term_splits_conjunctions():
    solver = SatSolver()
    encoder = Encoder(solver)
    a, b = VARS[0], VARS[1]
    encoder.assert_term(And(a, Not(b)))
    assert solver.solve() is True
    assert solver.model_value(encoder.var("a"))
    assert not solver.model_value(encoder.var("b"))


def test_true_false_constants():
    from repro.smt import FALSE, TRUE
    solver = SatSolver()
    encoder = Encoder(solver)
    t = encoder.literal(TRUE)
    solver.add_clause([t])
    assert solver.solve() is True
    encoder.assert_term(FALSE)
    assert solver.solve() is False


def test_decode_matches_evaluate():
    rng = random.Random(5)
    a, b, c, d = VARS
    pool = [
        And(a, Or(b, Not(c))),
        Xor(a, Iff(b, d)),
        AtLeast([a, b, c, d], 2),
        Ite(a, AtMost([b, c], 1), Or(c, d)),
    ]
    for term in pool:
        solver = SatSolver()
        encoder = Encoder(solver)
        lit = encoder.literal(term)
        solver.add_clause([lit])
        if not solver.solve():
            continue
        model = solver.model
        assign = {n: model[encoder.var(n)] for n in NAMES
                  if n in encoder.var_names}
        for name in NAMES:
            assign.setdefault(name, False)
        assert encoder.decode(term, model) == evaluate(term, assign)
        assert encoder.decode(term, model) is True
