"""Exhaustive correctness of the cardinality encodings."""

import itertools

import pytest

from repro.sat import CNF, SatSolver
from repro.smt.cardinality import (
    Totalizer,
    encode_at_least_sequential,
    encode_at_most_sequential,
)


def _solve_with_fixed(cnf, fixed):
    """Solve cnf with input vars fixed to the given boolean pattern."""
    solver = SatSolver()
    while solver.num_vars < cnf.num_vars:
        solver.new_var()
    ok = True
    for clause in cnf.clauses:
        ok = solver.add_clause(clause) and ok
    if not ok:
        return False, None
    assumptions = [v if val else -v for v, val in fixed.items()]
    res = solver.solve(assumptions=assumptions)
    return res, solver


@pytest.mark.parametrize("n", range(1, 8))
def test_totalizer_outputs_count_exactly(n):
    """For every input pattern, output j is true iff count >= j."""
    cnf = CNF()
    inputs = cnf.new_vars(n)
    totalizer = Totalizer(cnf, inputs, bound=n)
    assert len(totalizer.outputs) == n
    for bits in itertools.product([False, True], repeat=n):
        fixed = dict(zip(inputs, bits))
        res, solver = _solve_with_fixed(cnf, fixed)
        assert res is True
        count = sum(bits)
        for j, out in enumerate(totalizer.outputs, start=1):
            assert solver.model_value(out) == (count >= j), (bits, j)


@pytest.mark.parametrize("n,bound", [(4, 2), (5, 3), (6, 2), (7, 4)])
def test_truncated_totalizer_saturates(n, bound):
    cnf = CNF()
    inputs = cnf.new_vars(n)
    totalizer = Totalizer(cnf, inputs, bound=bound)
    assert len(totalizer.outputs) == bound
    for bits in itertools.product([False, True], repeat=n):
        fixed = dict(zip(inputs, bits))
        res, solver = _solve_with_fixed(cnf, fixed)
        assert res is True
        count = sum(bits)
        for j, out in enumerate(totalizer.outputs, start=1):
            assert solver.model_value(out) == (count >= j)


def test_totalizer_empty_inputs():
    cnf = CNF()
    totalizer = Totalizer(cnf, [], bound=3)
    assert totalizer.outputs == []


def test_totalizer_rejects_bad_bound():
    with pytest.raises(ValueError):
        Totalizer(CNF(), [1], bound=0)


@pytest.mark.parametrize("n,k", [(n, k) for n in range(1, 7)
                                 for k in range(0, n + 1)])
def test_sequential_at_most_blocks_exactly(n, k):
    cnf = CNF()
    inputs = cnf.new_vars(n)
    encode_at_most_sequential(cnf, inputs, k)
    for bits in itertools.product([False, True], repeat=n):
        fixed = dict(zip(inputs, bits))
        res, _ = _solve_with_fixed(cnf, fixed)
        assert res == (sum(bits) <= k), (bits, k)


@pytest.mark.parametrize("n,k", [(n, k) for n in range(1, 6)
                                 for k in range(0, n + 2)])
def test_sequential_at_least_blocks_exactly(n, k):
    cnf = CNF()
    inputs = cnf.new_vars(n)
    encode_at_least_sequential(cnf, inputs, k)
    for bits in itertools.product([False, True], repeat=n):
        fixed = dict(zip(inputs, bits))
        res, _ = _solve_with_fixed(cnf, fixed)
        assert res == (sum(bits) >= k), (bits, k)


def test_sequential_negative_k_unsat():
    cnf = CNF()
    inputs = cnf.new_vars(2)
    encode_at_most_sequential(cnf, inputs, -1)
    solver = SatSolver()
    ok = all(solver.add_clause(c) for c in cnf.clauses)
    assert not ok or solver.solve() is False


def test_totalizer_with_negated_literals():
    """Counting works over negative literals too."""
    cnf = CNF()
    inputs = cnf.new_vars(4)
    totalizer = Totalizer(cnf, [-v for v in inputs], bound=4)
    for bits in itertools.product([False, True], repeat=4):
        fixed = dict(zip(inputs, bits))
        res, solver = _solve_with_fixed(cnf, fixed)
        assert res is True
        count = sum(1 for bit in bits if not bit)
        for j, out in enumerate(totalizer.outputs, start=1):
            assert solver.model_value(out) == (count >= j)


@pytest.mark.parametrize("n,bound", [(1, 1), (4, 2), (5, 5), (6, 3), (7, 4)])
def test_sequential_counter_outputs_count_exactly(n, bound):
    from repro.smt.cardinality import SequentialCounter
    cnf = CNF()
    inputs = cnf.new_vars(n)
    counter = SequentialCounter(cnf, inputs, bound=bound)
    assert len(counter.outputs) == bound
    for bits in itertools.product([False, True], repeat=n):
        fixed = dict(zip(inputs, bits))
        res, solver = _solve_with_fixed(cnf, fixed)
        assert res is True
        count = sum(bits)
        for j, out in enumerate(counter.outputs, start=1):
            assert solver.model_value(out) == (count >= j), (bits, j)


def test_sequential_counter_empty_and_bad_bound():
    from repro.smt.cardinality import SequentialCounter
    assert SequentialCounter(CNF(), [], bound=2).outputs == []
    with pytest.raises(ValueError):
        SequentialCounter(CNF(), [1], bound=0)
