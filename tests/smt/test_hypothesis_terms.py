"""Property-based tests: solver agreement with ground-truth evaluation."""

import itertools

from hypothesis import given, settings, strategies as st

from repro.smt import (
    And,
    AtLeast,
    AtMost,
    Bool,
    Iff,
    Implies,
    Ite,
    Not,
    Or,
    Result,
    Solver,
    Xor,
    evaluate,
)

NAMES = ["a", "b", "c", "d", "e"]


def _terms(depth):
    leaf = st.sampled_from([Bool(n) for n in NAMES])
    if depth == 0:
        return leaf
    sub = _terms(depth - 1)

    def card(args_k):
        args, k, at_most = args_k
        return AtMost(args, k) if at_most else AtLeast(args, k)

    return st.one_of(
        leaf,
        st.builds(Not, sub),
        st.builds(lambda x, y: And(x, y), sub, sub),
        st.builds(lambda x, y: Or(x, y), sub, sub),
        st.builds(Implies, sub, sub),
        st.builds(Iff, sub, sub),
        st.builds(Xor, sub, sub),
        st.builds(Ite, sub, sub, sub),
        st.builds(
            card,
            st.tuples(
                st.lists(leaf, min_size=1, max_size=5),
                st.integers(min_value=0, max_value=5),
                st.booleans(),
            ),
        ),
    )


@given(_terms(3))
@settings(max_examples=120, deadline=None)
def test_sat_iff_some_assignment_satisfies(term):
    expected = any(
        evaluate(term, dict(zip(NAMES, bits)))
        for bits in itertools.product([False, True], repeat=len(NAMES)))
    solver = Solver()
    solver.add(term)
    outcome = solver.check()
    assert outcome == (Result.SAT if expected else Result.UNSAT)
    if outcome == Result.SAT:
        model = solver.model()
        assignment = {n: model[Bool(n)] for n in NAMES}
        assert evaluate(term, assignment)


@given(_terms(2))
@settings(max_examples=80, deadline=None)
def test_term_and_negation_partition_models(term):
    """#models(t) + #models(~t) == 2^n."""
    def count(t):
        solver = Solver()
        solver.add(t)
        n = 0
        while solver.check() == Result.SAT:
            model = solver.model()
            cube = [Bool(name) if model[Bool(name)] else Not(Bool(name))
                    for name in NAMES]
            solver.add(Not(And(*cube)))
            n += 1
            assert n <= 2 ** len(NAMES)
        return n

    assert count(term) + count(Not(term)) == 2 ** len(NAMES)
