"""Extendable counters and assumption-gated budgets vs brute force.

Exhaustive over every input pattern for n <= 6 (and every bound / raise
sequence), these tests pin the contract the assumption backend rests on:

* both counter encodings agree with the brute-force count for all k and
  both polarities (at-most and at-least),
* :meth:`raise_bound` is monotone — growing a counter never changes the
  meaning of the outputs that already existed, and the grown counter is
  indistinguishable from one built directly at the larger bound,
* a :class:`~repro.smt.BudgetHandle` selector, passed as an assumption,
  admits exactly the binomial number of models its bound allows.
"""

import itertools

import pytest

from repro.sat import CNF, SatSolver
from repro.smt import Bools, Solver
from repro.smt.cardinality import SequentialCounter, Totalizer
from repro.smt.solver import Result

COUNTERS = [Totalizer, SequentialCounter]


def _counter_id(cls):
    return cls.__name__


def _model_value(cnf, fixed, lit):
    """The forced value of *lit* under the fixed input pattern."""
    solver = SatSolver()
    while solver.num_vars < cnf.num_vars:
        solver.new_var()
    for clause in cnf.clauses:
        if not solver.add_clause(clause):
            return None
    assumptions = [v if val else -v for v, val in fixed.items()]
    if solver.solve(assumptions=assumptions) is not True:
        return None
    return solver.model_value(lit)


@pytest.mark.parametrize("counter_cls", COUNTERS, ids=_counter_id)
@pytest.mark.parametrize("n", range(1, 7))
def test_counters_agree_with_brute_force(counter_cls, n):
    """outputs[j-1] == (count >= j) for every pattern, j, and bound."""
    for bound in range(1, n + 1):
        cnf = CNF()
        inputs = cnf.new_vars(n)
        counter = counter_cls(cnf, inputs, bound=bound)
        assert len(counter.outputs) == bound
        for bits in itertools.product([False, True], repeat=n):
            fixed = dict(zip(inputs, bits))
            count = sum(bits)
            for j, out in enumerate(counter.outputs, start=1):
                value = _model_value(cnf, fixed, out)
                # at-least polarity: the output itself...
                assert value == (count >= j), (bound, bits, j)
                # ...and at-most polarity: its negation.
                assert (not value) == (count <= j - 1), (bound, bits, j)


@pytest.mark.parametrize("counter_cls", COUNTERS, ids=_counter_id)
@pytest.mark.parametrize("n", range(2, 7))
def test_raise_bound_monotone(counter_cls, n):
    """Raising the bound extends the outputs without disturbing them."""
    for start in range(1, n):
        for target in range(start + 1, n + 1):
            cnf = CNF()
            inputs = cnf.new_vars(n)
            counter = counter_cls(cnf, inputs, bound=start)
            before = list(counter.outputs)
            counter.raise_bound(target)
            assert counter.bound == target
            assert len(counter.outputs) == target
            # Old output literals are reused in place.
            assert counter.outputs[:start] == before
            # The grown counter allocates exactly as many variables as
            # one built directly at the target bound.
            direct = CNF()
            counter_cls(direct, direct.new_vars(n), bound=target)
            assert cnf.num_vars == direct.num_vars
            # And its outputs still mean "at least j inputs true".
            for bits in itertools.product([False, True], repeat=n):
                fixed = dict(zip(inputs, bits))
                count = sum(bits)
                for j, out in enumerate(counter.outputs, start=1):
                    assert _model_value(cnf, fixed, out) == (count >= j), \
                        (start, target, bits, j)


@pytest.mark.parametrize("counter_cls", COUNTERS, ids=_counter_id)
def test_raise_bound_stepwise_equals_direct(counter_cls):
    """Growing 1 -> 2 -> ... -> n step by step matches a direct build."""
    n = 6
    cnf = CNF()
    inputs = cnf.new_vars(n)
    counter = counter_cls(cnf, inputs, bound=1)
    for bound in range(2, n + 1):
        counter.raise_bound(bound)
    # Galloping overshoot and lowered bounds are both no-ops.
    counter.raise_bound(n + 5)
    counter.raise_bound(2)
    assert counter.bound == n
    direct = CNF()
    counter_cls(direct, direct.new_vars(n), bound=n)
    assert cnf.num_vars == direct.num_vars
    for bits in itertools.product([False, True], repeat=n):
        fixed = dict(zip(inputs, bits))
        count = sum(bits)
        for j, out in enumerate(counter.outputs, start=1):
            assert _model_value(cnf, fixed, out) == (count >= j)


def _count_models(solver, variables, assumptions):
    """Number of assignments to *variables* satisfiable under the
    assumptions (each candidate checked by fixing every variable)."""
    total = 0
    for bits in itertools.product([False, True], repeat=len(variables)):
        pattern = [v if bit else ~v for v, bit in zip(variables, bits)]
        with solver.scope():
            solver.add(*pattern)
            if solver.check(*assumptions) is Result.SAT:
                total += 1
    return total


def _binomial_at_most(n, k):
    from math import comb
    return sum(comb(n, i) for i in range(0, min(k, n) + 1))


@pytest.mark.parametrize("card_encoding", ["totalizer", "sequential"])
@pytest.mark.parametrize("n", range(1, 7))
def test_budget_handle_model_counts(card_encoding, n):
    """Assumption-gated bounds admit exactly the binomial model count.

    One solver, one handle, every k in both polarities — the exact
    workload of the assumption backend, checked against brute force.
    """
    solver = Solver(card_encoding=card_encoding)
    variables = Bools(" ".join(f"x{i}" for i in range(n)))
    handle = solver.budget_handle(variables, "budget")
    for k in range(0, n + 1):
        at_most = _count_models(solver, variables, [handle.at_most(k)])
        assert at_most == _binomial_at_most(n, k), ("<=", n, k)
        at_least = _count_models(solver, variables, [handle.at_least(k)])
        assert at_least == 2 ** n - _binomial_at_most(n, k - 1), \
            (">=", n, k)
    # The selectors stay sound after the sweep touched every bound:
    # combine a lower and an upper bound in one query.
    if n >= 2:
        both = _count_models(
            solver, variables,
            [handle.at_least(1), handle.at_most(n - 1)])
        assert both == 2 ** n - 2


@pytest.mark.parametrize("card_encoding", ["totalizer", "sequential"])
def test_budget_handle_weighted_multiset(card_encoding):
    """Duplicated terms count with multiplicity (weighted budgets)."""
    solver = Solver(card_encoding=card_encoding)
    a, b = Bools("a b")
    # cost(a) = 2, cost(b) = 3.
    handle = solver.budget_handle([a, a, b, b, b], "weighted")
    expected = {0: 1, 1: 1, 2: 2, 3: 3, 4: 3, 5: 4}
    for budget, models in expected.items():
        got = _count_models(solver, [a, b], [handle.at_most(budget)])
        assert got == models, (budget, got)
