"""SMT-LIB 2 export, validated with a miniature s-expression evaluator."""

import itertools
import random

import pytest

from repro.smt import (
    And,
    AtLeast,
    AtMost,
    Bool,
    FALSE,
    Iff,
    Implies,
    Ite,
    Not,
    Or,
    TRUE,
    Xor,
    evaluate,
    term_to_sexpr,
    to_smtlib,
)


def _tokenize(text):
    return text.replace("(", " ( ").replace(")", " ) ").split()


def _parse(tokens):
    token = tokens.pop(0)
    if token == "(":
        out = []
        while tokens[0] != ")":
            out.append(_parse(tokens))
        tokens.pop(0)
        return out
    return token


def _eval_sexpr(node, env):
    """Evaluate the SMT-LIB Boolean fragment we emit."""
    if isinstance(node, str):
        if node == "true":
            return True
        if node == "false":
            return False
        return env[node]
    head = node[0]
    if isinstance(head, list):  # ((_ at-most k) args...)
        assert head[0] == "_"
        op, k = head[1], int(head[2])
        count = sum(1 for arg in node[1:] if _eval_sexpr(arg, env))
        return count <= k if op == "at-most" else count >= k
    if head == "not":
        return not _eval_sexpr(node[1], env)
    if head == "and":
        return all(_eval_sexpr(a, env) for a in node[1:])
    if head == "or":
        return any(_eval_sexpr(a, env) for a in node[1:])
    if head == "xor":
        return _eval_sexpr(node[1], env) != _eval_sexpr(node[2], env)
    if head == "ite":
        if _eval_sexpr(node[1], env):
            return _eval_sexpr(node[2], env)
        return _eval_sexpr(node[3], env)
    raise AssertionError(f"unexpected operator {head}")


NAMES = ["a", "b", "c", "d"]
VARS = [Bool(n) for n in NAMES]


def _random_term(rng, depth):
    if depth == 0 or rng.random() < 0.3:
        return rng.choice(VARS)
    op = rng.choice(["not", "and", "or", "xor", "ite", "imp", "iff",
                     "atmost", "atleast"])
    sub = lambda: _random_term(rng, depth - 1)
    if op == "not":
        return Not(sub())
    if op == "and":
        return And(sub(), sub())
    if op == "or":
        return Or(sub(), sub())
    if op == "xor":
        return Xor(sub(), sub())
    if op == "ite":
        return Ite(sub(), sub(), sub())
    if op == "imp":
        return Implies(sub(), sub())
    if op == "iff":
        return Iff(sub(), sub())
    args = [rng.choice(VARS) for _ in range(rng.randint(2, 4))]
    k = rng.randint(1, len(args) - 1)
    return AtMost(args, k) if op == "atmost" else AtLeast(args, k)


def test_sexpr_semantics_match_evaluate():
    rng = random.Random(3)
    for _ in range(80):
        term = _random_term(rng, 3)
        sexpr = _parse(_tokenize(term_to_sexpr(term)))
        for bits in itertools.product([False, True], repeat=len(NAMES)):
            env = dict(zip(NAMES, bits))
            assert _eval_sexpr(sexpr, env) == evaluate(term, env), term


def test_constants():
    assert term_to_sexpr(TRUE) == "true"
    assert term_to_sexpr(FALSE) == "false"


def test_symbol_quoting():
    weird = Bool("Node 3")
    assert term_to_sexpr(weird) == "|Node 3|"
    plain = Bool("Node_3")
    assert term_to_sexpr(plain) == "Node_3"


def test_script_structure():
    a, b = VARS[0], VARS[1]
    script = to_smtlib([Or(a, b), AtMost([a, b], 1)],
                       comment="two lines\nof comment")
    assert script.startswith("; two lines\n; of comment\n")
    assert "(set-logic QF_FD)" in script
    assert script.count("(declare-const") == 2
    assert "(assert (or a b))" in script
    assert "(assert ((_ at-most 1) a b))" in script
    assert "(check-sat)" in script


def test_script_without_logic_and_model():
    script = to_smtlib([VARS[0]], logic="", check_sat=False,
                       get_model=False)
    assert "set-logic" not in script
    assert "check-sat" not in script


def test_analyzer_export():
    from repro.cases import case_analyzer
    from repro.core import ResiliencySpec
    analyzer = case_analyzer("fig3")
    script = analyzer.export_smtlib(
        ResiliencySpec.observability(k1=1, k2=1))
    # Every field device's Node variable is declared.
    for device in analyzer.network.field_device_ids:
        assert f"Node_{device}" in script
    assert "at-most" in script
    assert "(check-sat)" in script
    # Balanced parentheses.
    assert script.count("(") == script.count(")")


def test_cli_dump_smt2(tmp_path, capsys):
    from repro.cli import main
    path = str(tmp_path / "system.scada")
    main(["generate", "--buses", "14", "--seed", "5", "--out", path])
    capsys.readouterr()
    smt_path = str(tmp_path / "model.smt2")
    main(["verify", path, "--k", "1", "--dump-smt2", smt_path])
    text = open(smt_path).read()
    assert "(check-sat)" in text
