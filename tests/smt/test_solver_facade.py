"""The z3py-style Solver facade."""

import pytest

from repro.smt import (
    And,
    AtMost,
    Bool,
    Bools,
    Implies,
    Not,
    Or,
    Result,
    Solver,
)

a, b, c = Bools("a b c")


def test_check_sat_and_model():
    s = Solver()
    s.add(Or(a, b), Not(a))
    assert s.check() == Result.SAT
    model = s.model()
    assert model[b] is True
    assert model[a] is False


def test_check_unsat():
    s = Solver()
    s.add(a, Not(a))
    assert s.check() == Result.UNSAT


def test_model_before_check_raises():
    s = Solver()
    with pytest.raises(RuntimeError):
        s.model()


def test_result_not_boolean():
    with pytest.raises(TypeError):
        bool(Result.SAT)


def test_assumptions_and_core():
    s = Solver()
    s.add(Implies(a, b))
    assert s.check(a, Not(b)) == Result.UNSAT
    core = s.unsat_core()
    assert set(core) <= {a, Not(b)}
    assert core
    assert s.check(a) == Result.SAT
    assert s.model()[b] is True


def test_push_pop_scopes():
    s = Solver()
    s.add(Or(a, b))
    s.push()
    s.add(Not(a), Not(b))
    assert s.check() == Result.UNSAT
    s.pop()
    assert s.check() == Result.SAT
    s.push()
    s.add(Not(a))
    assert s.check() == Result.SAT
    assert s.model()[b] is True
    s.pop()


def test_nested_push_pop():
    s = Solver()
    s.push()
    s.add(a)
    s.push()
    s.add(Not(a))
    assert s.check() == Result.UNSAT
    s.pop()
    assert s.check() == Result.SAT
    s.pop()
    assert s.check() == Result.SAT


def test_pop_without_push_raises():
    with pytest.raises(RuntimeError):
        Solver().pop()


def test_assertions_listing():
    s = Solver()
    s.add(a)
    s.push()
    s.add(b)
    assert s.assertions() == [a, b]
    s.pop()
    assert s.assertions() == [a]


def test_statistics_accumulate():
    s = Solver()
    s.add(Or(a, b), AtMost([a, b, c], 1))
    assert s.check() == Result.SAT
    stats = s.statistics
    assert stats.checks == 1
    assert stats.num_vars > 0
    assert stats.check_time >= 0.0
    assert "vars" in repr(stats)


def test_unknown_on_budget():
    # Pigeonhole encoded through terms; 1 conflict cannot finish.
    holes = 6
    pigeons = holes + 1
    vars_ = {(p, h): Bool(f"p{p}h{h}")
             for p in range(pigeons) for h in range(holes)}
    s = Solver()
    for p in range(pigeons):
        s.add(Or(*[vars_[p, h] for h in range(holes)]))
    for h in range(holes):
        s.add(AtMost([vars_[p, h] for p in range(pigeons)], 1))
    assert s.check(max_conflicts=1) == Result.UNKNOWN
    assert s.check() == Result.UNSAT


def test_add_non_term_raises():
    with pytest.raises(TypeError):
        Solver().add("a")


def test_model_true_variables():
    s = Solver()
    s.add(a, Not(b))
    assert s.check() == Result.SAT
    assert "a" in s.model().true_variables()
    assert "b" not in s.model().true_variables()


def test_sequential_encoding_agrees_with_totalizer():
    import itertools
    from repro.smt import evaluate
    names = ["p", "q", "r", "t"]
    vs = [Bool(n) for n in names]
    for k in range(0, 4):
        for negate in (False, True):
            term = AtMost(vs, k)
            if negate:
                term = Not(term)
            counts = []
            for encoding in ("totalizer", "sequential"):
                s = Solver(card_encoding=encoding)
                s.add(term)
                n = 0
                while s.check() == Result.SAT:
                    model = s.model()
                    cube = [v if model[v] else Not(v) for v in vs]
                    s.add(Not(And(*cube)))
                    n += 1
                counts.append(n)
            truth = sum(
                1 for bits in itertools.product([False, True], repeat=4)
                if evaluate(term, dict(zip(names, bits))))
            assert counts[0] == counts[1] == truth, (k, negate, counts)


def test_unknown_encoding_rejected():
    import pytest as _pytest
    with _pytest.raises(ValueError):
        Solver(card_encoding="bogus")
