"""Event model: validation, JSONL round-trips, emulator behaviour."""

from __future__ import annotations

import io

import pytest

from repro.stream import (
    SCENARIOS,
    EventKind,
    ScenarioEmulator,
    StreamError,
    StreamEvent,
    read_events,
    write_events,
)


def test_event_requires_matching_payload():
    with pytest.raises(StreamError):
        StreamEvent(seq=1, time=0.0, kind=EventKind.DEVICE_FAILURE)
    with pytest.raises(StreamError):
        StreamEvent(seq=1, time=0.0, kind=EventKind.LINK_CUT)
    with pytest.raises(StreamError):
        StreamEvent(seq=1, time=0.0, kind=EventKind.CRYPTO_DOWNGRADE)


def test_pairs_are_normalized_sorted():
    event = StreamEvent(seq=1, time=0.0, kind=EventKind.LINK_CUT,
                        link=(9, 3))
    assert event.link == (3, 9)
    event = StreamEvent(seq=2, time=0.0,
                        kind=EventKind.CRYPTO_DOWNGRADE, pair=(7, 2))
    assert event.pair == (2, 7)


def test_json_round_trip_preserves_everything():
    original = StreamEvent(seq=4, time=1.25,
                           kind=EventKind.DEVICE_FAILURE,
                           devices=(11, 12), scenario="cascading-outage")
    assert StreamEvent.from_json(original.to_json()) == original


def test_from_json_rejects_newer_schema_and_bad_kind():
    with pytest.raises(StreamError):
        StreamEvent.from_json({"v": 99, "kind": "device-failure",
                               "devices": [1]})
    with pytest.raises(StreamError):
        StreamEvent.from_json({"kind": "meteor-strike"})


def test_jsonl_round_trip_and_blank_lines():
    events = [
        StreamEvent(seq=1, time=0.5, kind=EventKind.IED_COMPROMISE,
                    devices=(3,)),
        StreamEvent(seq=2, time=1.0, kind=EventKind.LINK_RESTORE,
                    link=(1, 2)),
    ]
    buffer = io.StringIO()
    assert write_events(events, buffer) == 2
    buffer = io.StringIO(buffer.getvalue() + "\n\n")
    assert read_events(buffer) == events


def test_read_events_reports_line_numbers():
    with pytest.raises(StreamError, match="line 2"):
        read_events(io.StringIO('{"kind": "link-cut", "link": [1, 2]}\n'
                                "not json\n"))


def test_emulator_is_deterministic(ieee14):
    first = ScenarioEmulator(ieee14.network, seed=3).events(15)
    second = ScenarioEmulator(ieee14.network, seed=3).events(15)
    assert first == second
    assert [e.seq for e in first] == list(range(1, 16))
    times = [e.time for e in first]
    assert times == sorted(times)


def test_emulator_rejects_unknown_scenarios(ieee14):
    with pytest.raises(StreamError):
        ScenarioEmulator(ieee14.network, scenarios=("zero-day",))


def test_emulator_respects_scenario_restriction(ieee14):
    emulator = ScenarioEmulator(
        ieee14.network, seed=1,
        scenarios=("crypto-downgrade", "ied-compromise"))
    kinds = {event.kind for event in emulator.events(20)}
    allowed = {EventKind.CRYPTO_DOWNGRADE, EventKind.CRYPTO_RESTORE,
               EventKind.IED_COMPROMISE, EventKind.IED_RESTORE}
    assert kinds <= allowed


def test_emulated_sequences_replay_cleanly(ieee14):
    """Every emitted event is valid against the live state so far."""
    from repro.stream import DeltaCompiler, LiveState

    compiler = DeltaCompiler(ieee14)
    for seed in (0, 1, 2):
        state = LiveState()
        emulator = ScenarioEmulator(ieee14.network, seed=seed)
        for event in emulator.events(30):
            delta = compiler.apply(state, event)
            assert delta.changed, (
                f"seed {seed}: emulator emitted no-op {event.describe()}")
            state = delta.after
    assert set(SCENARIOS) == {
        "device-outage", "link-cut", "crypto-downgrade",
        "ied-compromise", "cascading-outage"}
