"""Watcher: replay equivalence, alarms, warm-engine reuse."""

from __future__ import annotations

import pytest

from repro.core.results import Status
from repro.core.specs import ResiliencySpec
from repro.obs import Tracer, activate
from repro.stream import (
    EventKind,
    ScenarioEmulator,
    StreamError,
    StreamEvent,
    Watcher,
    batch_verdicts,
)


def _floors(k=1):
    return [
        ResiliencySpec.observability(k=k),
        ResiliencySpec.secured_observability(k=k),
        ResiliencySpec.bad_data_detectability(r=1, k=k),
    ]


def test_watcher_needs_floors_and_positive_cache(ieee14):
    with pytest.raises(StreamError):
        Watcher(ieee14, floors=[])
    with pytest.raises(StreamError):
        Watcher(ieee14, floors=_floors(), engine_cache=0)


def test_replay_equivalence_across_property_kinds(ieee14):
    """After every event the watcher's incrementally-maintained
    verdicts equal a from-scratch batch verification of the mutated
    configuration — the affected-property pruning loses nothing."""
    floors = _floors(k=1)
    watcher = Watcher(ieee14, floors)
    emulator = ScenarioEmulator(ieee14.network, seed=3)
    for event in emulator.events(12):
        watcher.apply(event)
        expected = batch_verdicts(ieee14, watcher.state, floors)
        for spec in floors:
            assert watcher.verdicts[spec].status is expected[spec], (
                f"divergence after {event.describe()} "
                f"on {spec.describe()}")


def test_alarms_raise_and_clear_with_the_fault(ieee14):
    floors = _floors(k=0)
    watcher = Watcher(ieee14, floors)
    baseline = {spec: result.status
                for spec, result in watcher.verdicts.items()}
    emulator = ScenarioEmulator(ieee14.network, seed=5)
    seq = 0
    for seq, event in enumerate(emulator.events(20), start=1):
        watcher.apply(event)
    raised = [a for a in watcher.alarms if a.kind == "raised"]
    assert raised, "seeded feed never broke a k=0 floor"
    # Undo everything still outstanding; verdicts must return to the
    # baseline and every raised cell must clear.
    state = watcher.state
    for device in sorted(state.failed):
        seq += 1
        watcher.apply(StreamEvent(seq=seq, time=float(seq),
                                  kind=EventKind.DEVICE_RECOVERY,
                                  devices=(device,)))
    for link in sorted(state.cut):
        seq += 1
        watcher.apply(StreamEvent(seq=seq, time=float(seq),
                                  kind=EventKind.LINK_RESTORE,
                                  link=link))
    for pair in sorted(state.downgraded):
        seq += 1
        watcher.apply(StreamEvent(seq=seq, time=float(seq),
                                  kind=EventKind.CRYPTO_RESTORE,
                                  pair=pair))
    for device in sorted(state.compromised):
        seq += 1
        watcher.apply(StreamEvent(seq=seq, time=float(seq),
                                  kind=EventKind.IED_RESTORE,
                                  devices=(device,)))
    assert watcher.state.pristine
    for spec in floors:
        assert watcher.verdicts[spec].status is baseline[spec]
    assert any(a.kind == "cleared" for a in watcher.alarms)
    assert not watcher.below_floor or any(
        baseline[spec] is Status.THREAT_FOUND
        for spec in watcher.below_floor)


def test_recovery_lands_on_the_warm_engine(ieee14):
    """Fail → recover returns to the base fingerprint: an LRU hit."""
    floors = [ResiliencySpec.observability(k=1)]
    tracer = Tracer(meta={})
    with activate(tracer):
        watcher = Watcher(ieee14, floors)
        ied = sorted(ieee14.network.ied_ids)[0]
        watcher.apply(StreamEvent(seq=1, time=1.0,
                                  kind=EventKind.DEVICE_FAILURE,
                                  devices=(ied,)))
        watcher.apply(StreamEvent(seq=2, time=2.0,
                                  kind=EventKind.DEVICE_RECOVERY,
                                  devices=(ied,)))
    counters = tracer.registry.counters
    assert counters.get("stream.engine.hits", 0) >= 1
    assert counters.get("stream.events", 0) == 2
    assert watcher.snapshot()["engines"] == 2


def test_noop_event_skips_every_floor(ieee14):
    floors = _floors(k=1)
    watcher = Watcher(ieee14, floors)
    ied = sorted(ieee14.network.ied_ids)[0]
    update = watcher.apply(StreamEvent(seq=1, time=1.0,
                                       kind=EventKind.DEVICE_RECOVERY,
                                       devices=(ied,)))
    assert not update.delta.changed
    assert update.reverified == []
    assert len(update.skipped) == len(floors)


def test_crypto_event_reverifies_only_security_floors(ieee14):
    floors = _floors(k=1)
    watcher = Watcher(ieee14, floors)
    link = sorted(link.node_pair
                  for link in ieee14.network.topology.links)[0]
    update = watcher.apply(StreamEvent(
        seq=1, time=1.0, kind=EventKind.CRYPTO_DOWNGRADE, pair=link))
    touched = {spec.property.value for spec, _ in update.reverified}
    assert "observability" not in touched
    assert touched <= {"secured-observability",
                       "bad-data-detectability"}
    assert any(spec.property.value == "observability"
               for spec in update.skipped)


def test_duplicate_floors_are_deduplicated(ieee14):
    spec = ResiliencySpec.observability(k=1)
    watcher = Watcher(ieee14, [spec, spec])
    assert watcher.floors == [spec]
