"""Shared fixtures for the streaming layer tests."""

from __future__ import annotations

import pytest

from repro.core import ObservabilityProblem
from repro.grid import case_by_buses
from repro.scada import GeneratorConfig, generate_scada
from repro.scada.config_io import CaseConfig


@pytest.fixture(scope="session")
def ieee14() -> CaseConfig:
    """The IEEE 14-bus synthetic system the stream tests share."""
    synthetic = generate_scada(
        case_by_buses(14),
        GeneratorConfig(measurement_fraction=0.7, secure_fraction=1.0,
                        dual_home_fraction=0.3, hierarchy_level=1,
                        seed=5))
    problem = ObservabilityProblem.from_table(synthetic.table)
    return CaseConfig(network=synthetic.network, problem=problem,
                      spec=None)
