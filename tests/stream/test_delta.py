"""Delta compiler: overlay folding, affected sets, materialization."""

from __future__ import annotations

import pytest

from repro.core.specs import Property
from repro.stream import (
    DOWNGRADE_PROFILE,
    DeltaCompiler,
    EventKind,
    LiveState,
    StreamError,
    StreamEvent,
)


def _event(kind, seq=1, **payload):
    return StreamEvent(seq=seq, time=float(seq), kind=kind, **payload)


def test_device_failure_affects_everything(ieee14):
    compiler = DeltaCompiler(ieee14)
    ied = sorted(ieee14.network.ied_ids)[0]
    delta = compiler.apply(LiveState(), _event(
        EventKind.DEVICE_FAILURE, devices=(ied,)))
    assert delta.changed
    assert delta.affected == frozenset(Property)
    assert delta.after.failed == {ied}


def test_crypto_downgrade_affects_only_security_properties(ieee14):
    compiler = DeltaCompiler(ieee14)
    link = sorted(link.node_pair
                  for link in ieee14.network.topology.links)[0]
    delta = compiler.apply(LiveState(), _event(
        EventKind.CRYPTO_DOWNGRADE, pair=link))
    assert delta.affected == frozenset(
        p for p in Property if p.uses_security)
    assert Property.OBSERVABILITY not in delta.affected


def test_compromise_spares_command_deliverability(ieee14):
    compiler = DeltaCompiler(ieee14)
    ied = sorted(ieee14.network.ied_ids)[0]
    delta = compiler.apply(LiveState(), _event(
        EventKind.IED_COMPROMISE, devices=(ied,)))
    assert Property.COMMAND_DELIVERABILITY not in delta.affected
    assert Property.OBSERVABILITY in delta.affected


def test_redundant_events_are_noops_with_empty_affected(ieee14):
    compiler = DeltaCompiler(ieee14)
    ied = sorted(ieee14.network.ied_ids)[0]
    state = compiler.apply(LiveState(), _event(
        EventKind.DEVICE_FAILURE, devices=(ied,))).after
    again = compiler.apply(state, _event(
        EventKind.DEVICE_FAILURE, seq=2, devices=(ied,)))
    assert not again.changed
    assert again.affected == frozenset()
    assert "already failed" in again.note
    not_cut = compiler.apply(state, _event(
        EventKind.LINK_RESTORE, seq=3,
        link=sorted(link.node_pair
                    for link in ieee14.network.topology.links)[0]))
    assert not not_cut.changed


def test_invalid_subjects_are_rejected(ieee14):
    compiler = DeltaCompiler(ieee14)
    mtu = ieee14.network.mtu_id
    with pytest.raises(StreamError, match="field device"):
        compiler.apply(LiveState(), _event(
            EventKind.DEVICE_FAILURE, devices=(mtu,)))
    with pytest.raises(StreamError, match="no link"):
        compiler.apply(LiveState(), _event(
            EventKind.LINK_CUT, link=(99998, 99999)))
    rtu = sorted(ieee14.network.rtu_ids)[0]
    with pytest.raises(StreamError, match="not an IED"):
        compiler.apply(LiveState(), _event(
            EventKind.IED_COMPROMISE, devices=(rtu,)))


def test_materialize_pristine_returns_base(ieee14):
    compiler = DeltaCompiler(ieee14)
    assert compiler.materialize(LiveState()) is ieee14


def test_materialize_removes_failed_device_and_its_links(ieee14):
    compiler = DeltaCompiler(ieee14)
    ied = sorted(ieee14.network.ied_ids)[0]
    state = LiveState(failed=frozenset({ied}))
    config = compiler.materialize(state)
    assert ied not in config.network.devices
    assert all(ied not in link.node_pair
               for link in config.network.topology.links)
    assert ied not in config.network.measurement_map
    assert config.problem is ieee14.problem


def test_materialize_compromise_keeps_device_drops_measurements(ieee14):
    compiler = DeltaCompiler(ieee14)
    ied = next(i for i in sorted(ieee14.network.ied_ids)
               if ieee14.network.measurement_map.get(i))
    config = compiler.materialize(
        LiveState(compromised=frozenset({ied})))
    assert ied in config.network.devices
    assert ied not in config.network.measurement_map


def test_materialize_downgrade_forces_broken_profile(ieee14):
    compiler = DeltaCompiler(ieee14)
    link = sorted(link.node_pair
                  for link in ieee14.network.topology.links)[0]
    config = compiler.materialize(
        LiveState(downgraded=frozenset({link})))
    assert config.network.pair_security[link] == (DOWNGRADE_PROFILE,)
    # Delivery survives a downgrade; the protections do not.
    assert config.network.crypto_pairing_ok(*link)
    assert not config.network.hop_authenticated(*link)


def test_fail_then_recover_restores_the_base_fingerprint(ieee14):
    """A recovered system hashes like the base — warm engines revive."""
    compiler = DeltaCompiler(ieee14)
    ied = sorted(ieee14.network.ied_ids)[0]
    failed = compiler.materialize(LiveState(failed=frozenset({ied})))
    assert (failed.network.fingerprint()
            != ieee14.network.fingerprint())
    state = compiler.apply(
        LiveState(failed=frozenset({ied})),
        _event(EventKind.DEVICE_RECOVERY, devices=(ied,))).after
    assert state.pristine
    assert (compiler.materialize(state).network.fingerprint()
            == ieee14.network.fingerprint())
