#!/usr/bin/env python3
"""Diagnose and repair the case study's security weaknesses.

The paper's future work asks for "automated synthesis of necessary
configurations for resilient SCADA systems".  This example runs that
loop on the §IV case study:

* **Fig. 4 topology**: RTU 12 is a single point of failure for plain
  observability — the repair search proposes a redundant link.
* **Fig. 3 topology**: secured observability is not (1,1)-resilient
  because IED 1's and IED 4's uplinks lack integrity protection — the
  repair search proposes crypto-profile upgrades.

Usage::

    python examples/security_hardening.py
"""

from repro.cases import case_problem, fig3_network, fig4_network
from repro.core import ResiliencySpec, ScadaAnalyzer
from repro.core.hardening import harden


def show(title: str, network, spec, **kwargs) -> None:
    problem = case_problem()
    analyzer = ScadaAnalyzer(network, problem)
    before = analyzer.verify(spec)
    print(f"== {title} ==")
    print(f"  before: {before.summary()}")
    if before.is_resilient:
        print("  nothing to repair\n")
        return
    result = harden(network, problem, spec, **kwargs)
    print(f"  repair: {result.summary()}")
    if result.succeeded:
        after = ScadaAnalyzer(result.network, problem).verify(spec)
        print(f"  after : {after.summary()}")
        print(f"  ({result.verify_calls} verification calls)")
    print()


def main() -> None:
    show(
        "Fig. 4: RTU 12 single point of failure",
        fig4_network(),
        ResiliencySpec.observability(k1=0, k2=1),
    )
    show(
        "Fig. 3: weak crypto breaks (1,1)-resilient secured observability",
        fig3_network(),
        ResiliencySpec.secured_observability(k1=1, k2=1),
        max_repairs=3,
        max_verify_calls=2000,
    )
    show(
        "Fig. 4: secured observability under one RTU failure",
        fig4_network(),
        ResiliencySpec.secured_observability(k1=0, k2=1),
        max_repairs=2,
        max_verify_calls=2000,
    )


if __name__ == "__main__":
    main()
