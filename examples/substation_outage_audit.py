#!/usr/bin/env python3
"""A grid operator's resiliency audit of a 30-bus SCADA deployment.

This is the workflow the paper's introduction motivates: an operator
wants to know, *before* an incident, how many simultaneous device
outages (failures or DoS attacks) the telemetry network tolerates while
state estimation stays possible — and exactly which device combinations
are dangerous.

The script

1. generates a synthetic 30-bus SCADA system (§V-A policy),
2. finds the maximal observability resiliency (total, IED-only,
   RTU-only),
3. enumerates every minimal threat vector one step beyond the certified
   budget, and
4. ranks devices by how many threat vectors they participate in — the
   "dependability breach points" the paper's threat synthesis is for.

Usage::

    python examples/substation_outage_audit.py [seed]
"""

import sys
from collections import Counter

from repro.analysis import (
    estimate_availability,
    max_ied_resiliency,
    max_rtu_resiliency,
    max_total_resiliency,
    threat_space,
)
from repro.core import ObservabilityProblem, ResiliencySpec, ScadaAnalyzer
from repro.grid import case30
from repro.scada import GeneratorConfig, generate_scada


def main(seed: int = 0) -> None:
    config = GeneratorConfig(
        measurement_fraction=0.8,
        hierarchy_level=2,
        dual_home_fraction=0.25,
        seed=seed,
    )
    synthetic = generate_scada(case30(seed=seed), config)
    network = synthetic.network
    problem = ObservabilityProblem.from_table(synthetic.table)
    analyzer = ScadaAnalyzer(network, problem)

    print(f"SCADA deployment: {len(network.ied_ids)} IEDs, "
          f"{len(network.rtu_ids)} RTUs, "
          f"{len(network.topology.links)} links, "
          f"{problem.num_measurements} measurements over "
          f"{problem.num_states} states")

    print("\n-- maximal resiliency --")
    k_total = max_total_resiliency(analyzer)
    k_ied = max_ied_resiliency(analyzer)
    k_rtu = max_rtu_resiliency(analyzer)
    print(f"  any devices : tolerates {k_total} failure(s)")
    print(f"  IEDs only   : tolerates {k_ied} failure(s)")
    print(f"  RTUs only   : tolerates {k_rtu} failure(s)")

    spec = ResiliencySpec.observability(k=k_total + 1)
    print(f"\n-- threat space one step beyond the certificate "
          f"({spec.describe()}) --")
    space = threat_space(analyzer, spec, limit=200)
    suffix = "+" if space.truncated else ""
    print(f"  {space.size}{suffix} minimal threat vector(s); "
          f"sizes: {space.by_size()}")
    for vector in space.vectors[:10]:
        print(f"    - {vector.describe(network.label)}")
    if space.size > 10:
        print(f"    ... and {space.size - 10} more")

    print("\n-- dependability breach points --")
    participation = Counter()
    for vector in space.vectors:
        for device in vector.failed_devices:
            participation[device] += 1
    for device, count in participation.most_common(5):
        share = 100.0 * count / max(space.size, 1)
        print(f"  {network.label(device):>8}: in {count} vectors "
              f"({share:.0f}% of the threat space)")

    critical = [device for device, count in participation.items()
                if count == space.size]
    if critical:
        names = ", ".join(network.label(d) for d in critical)
        print(f"\n  every threat vector involves: {names} — "
              f"harden these first.")

    print("\n-- probabilistic availability (2% per-device failure rate) --")
    estimate = estimate_availability(
        analyzer, failure_probability=0.02, samples=3000, seed=seed,
        certificate=max(k_total, 0) if k_total >= 0 else None)
    print(f"  {estimate.summary()}")


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 0)
