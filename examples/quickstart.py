#!/usr/bin/env python3
"""Quickstart: verify the paper's 5-bus case study in a few lines.

Runs the two scenarios of §IV — (k1, k2)-resilient observability and
secured observability on the Fig. 3 / Fig. 4 topologies — and prints
the verdicts along with the threat vectors the SMT model synthesizes.

Usage::

    python examples/quickstart.py
"""

from repro.cases import case_analyzer, case_problem, fig3_network
from repro.core import ResiliencySpec, Status
from repro.lint import lint_case


def main() -> None:
    # Lint first: the analyzer refuses configurations with error-level
    # findings, so surface the diagnostics before verifying anything.
    print("== Lint: Fig. 3 configuration ==")
    report = lint_case(fig3_network(), case_problem())
    for diagnostic in report:
        print(f"  {diagnostic.format()}")
    print(f"  {report.summary()}")
    assert not report.has_errors  # warnings only (two hmac-128 IEDs)

    print("\n== Scenario 1: observability, Fig. 3 topology ==")
    fig3 = case_analyzer("fig3")

    spec = ResiliencySpec.observability(k1=1, k2=1)
    result = fig3.verify(spec)
    print(f"  {result.summary()}")
    assert result.status is Status.RESILIENT  # the paper's unsat

    spec = ResiliencySpec.observability(k1=2, k2=1)
    result = fig3.verify(spec)
    print(f"  {result.summary()}")
    print(f"    lost measurements: "
          f"{sorted(result.threat.undelivered_measurements)}")

    vectors = fig3.enumerate_threat_vectors(spec)
    print(f"    all {len(vectors)} minimal threat vectors:")
    for vector in vectors:
        print(f"      - {vector.describe()}")

    print("\n== Scenario 2: secured observability, Fig. 3 topology ==")
    for budget in [dict(k1=1, k2=0), dict(k1=0, k2=1), dict(k1=1, k2=1)]:
        spec = ResiliencySpec.secured_observability(**budget)
        print(f"  {fig3.verify(spec).summary()}")

    print("\n== Fig. 4 topology (RTU 9 re-homed to RTU 12) ==")
    fig4 = case_analyzer("fig4")
    result = fig4.verify(ResiliencySpec.observability(k1=0, k2=1))
    print(f"  {result.summary()}")
    print("    (RTU 12 is a single point of failure after the re-homing)")


if __name__ == "__main__":
    main()
