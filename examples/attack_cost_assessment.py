#!/usr/bin/env python3
"""Adversary-aware risk assessment: what does the cheapest attack cost?

The paper's k-budget treats all device failures alike; a risk team
prices them differently (field IEDs are soft targets, control-center
RTUs are hardened).  This example prices devices, finds the cheapest
attack against observability and against secured observability, shows
how hardening shifts the price, and finishes with the full Markdown
audit report.

Usage::

    python examples/attack_cost_assessment.py
"""

from repro.analysis import cheapest_threat, uniform_costs
from repro.cases import case_analyzer, case_problem, fig3_network
from repro.core import Property, ResiliencySpec, ScadaAnalyzer
from repro.core.hardening import harden
from repro.report import audit_report


def main() -> None:
    analyzer = case_analyzer("fig3")
    costs = uniform_costs(analyzer, ied_cost=1, rtu_cost=3)
    print("attack prices: IED = 1, RTU = 3\n")

    print("== cheapest attacks on the 5-bus case study (Fig. 3) ==")
    for prop in (Property.OBSERVABILITY, Property.SECURED_OBSERVABILITY):
        result = cheapest_threat(analyzer, prop, costs)
        print(f"  {result.summary()}")
        print(f"    ({result.solver_calls} solver calls)")

    print("\n== after hardening the weak links ==")
    spec = ResiliencySpec.secured_observability(k1=1, k2=1)
    repair = harden(fig3_network(), case_problem(), spec,
                    max_repairs=3, max_verify_calls=2000)
    print(f"  {repair.summary()}")
    if repair.succeeded:
        hardened = ScadaAnalyzer(repair.network, case_problem())
        before = cheapest_threat(analyzer,
                                 Property.SECURED_OBSERVABILITY, costs)
        after = cheapest_threat(hardened,
                                Property.SECURED_OBSERVABILITY, costs)
        print(f"  cheapest secured-observability attack: "
              f"{before.cost} -> {after.cost}")

    print("\n== full audit report ==\n")
    print(audit_report(fig3_network(), case_problem(),
                       include_hardening=False))


if __name__ == "__main__":
    main()
