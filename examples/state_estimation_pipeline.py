#!/usr/bin/env python3
"""End-to-end: what the analyzer's verdicts mean for state estimation.

The resiliency properties are not abstract: observability failure means
the control center literally cannot estimate the grid state, and
insufficient measurement redundancy means injected bad data goes
undetected.  This example closes the loop on the IEEE 14-bus system:

1. certify a failure budget with the SCADA Analyzer,
2. simulate a *within-budget* outage → WLS estimation still recovers
   the true state,
3. simulate a threat-vector outage → the estimator provably fails
   (rank-deficient gain matrix),
4. corrupt one measurement → the LNR detector catches and removes it
   while redundancy holds.

Usage::

    python examples/state_estimation_pipeline.py
"""

import numpy as np

from repro.core import ObservabilityProblem, ResiliencySpec, ScadaAnalyzer
from repro.grid import DcStateEstimator, UnobservableError, ieee14
from repro.scada import GeneratorConfig, generate_scada


def delivered_readings(analyzer, estimator, true_angles, failed):
    """Meter readings that actually reach the MTU given failures."""
    delivered = analyzer.reference.delivered_measurements(failed)
    return estimator.measure(true_angles, indices=sorted(delivered))


def main() -> None:
    synthetic = generate_scada(
        ieee14(),
        GeneratorConfig(measurement_fraction=0.8, dual_home_fraction=0.3,
                        seed=2))
    problem = ObservabilityProblem.from_table(synthetic.table)
    analyzer = ScadaAnalyzer(synthetic.network, problem)
    estimator = DcStateEstimator(synthetic.table, sigma=0.01)

    rng = np.random.default_rng(1)
    true_angles = rng.normal(0.0, 0.1, 14)
    true_angles[0] = 0.0

    # 1. Certify a budget.
    k = 0
    while analyzer.verify(ResiliencySpec.observability(k=k + 1),
                          minimize=False).is_resilient:
        k += 1
    print(f"certified: {k}-resilient observability HOLDS, "
          f"{k + 1} fails")

    # 2. A within-budget outage: estimation still works.
    result = analyzer.verify(ResiliencySpec.observability(k=k + 1))
    threat = set(result.threat.failed_devices)
    within_budget = set(list(threat)[:k]) if k else set()
    readings = delivered_readings(analyzer, estimator, true_angles,
                                  within_budget)
    estimate = estimator.estimate(readings)
    error = float(np.max(np.abs(estimate.angles - true_angles)))
    labels = [synthetic.network.label(d) for d in sorted(within_budget)]
    print(f"\noutage {labels or '(none)'} (within budget): "
          f"estimation OK, max angle error {error:.2e} rad")

    # 3. The threat vector: estimation provably fails.
    labels = [synthetic.network.label(d) for d in sorted(threat)]
    readings = delivered_readings(analyzer, estimator, true_angles, threat)
    print(f"\noutage {labels} (the threat vector): ", end="")
    try:
        estimator.estimate(readings)
        print("estimation unexpectedly succeeded?!")
    except UnobservableError as exc:
        print(f"estimation fails as predicted —\n  {exc}")

    # 4. Bad data: inject a gross error and let the LNR detector work.
    readings = delivered_readings(analyzer, estimator, true_angles, set())
    victim = sorted(readings)[3]
    readings[victim] += 0.8
    clean, removed = estimator.detect_and_remove_bad_data(readings)
    error = float(np.max(np.abs(clean.angles - true_angles)))
    print(f"\ninjected gross error into z{victim}: detector removed "
          f"{removed}, residual test "
          f"{'passes' if clean.chi_square_passes else 'fails'}, "
          f"max angle error {error:.2e} rad")


if __name__ == "__main__":
    main()
